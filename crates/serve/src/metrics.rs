//! Serving metrics: counters, a latency reservoir, a batch-size histogram,
//! per-replica queue-depth gauges, and connection gauges — all cheap enough
//! to update on every request.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use vgod_graph::{global_store_stats, StoreStats};

/// Batch-size histogram bucket upper bounds (inclusive); the last bucket is
/// unbounded.
pub const BATCH_BUCKETS: [usize; 7] = [1, 2, 4, 8, 16, 32, usize::MAX];

const LATENCY_RING: usize = 4096;

/// Shared serving metrics. HTTP handlers, the event loop, and the replica
/// threads update it concurrently; `GET /metrics` renders a snapshot.
#[derive(Debug, Default)]
pub struct Metrics {
    requests: AtomicU64,
    errors: AtomicU64,
    rejected: AtomicU64,
    queue_depth: AtomicU64,
    batches: AtomicU64,
    batch_hist: [AtomicU64; BATCH_BUCKETS.len()],
    conns_accepted: AtomicU64,
    conns_active: AtomicU64,
    /// One gauge per scoring replica, sized once by [`Metrics::init_replicas`].
    replica_depth: OnceLock<Box<[AtomicU64]>>,
    /// Ring of the most recent request latencies (µs), for percentiles.
    latencies_us: Mutex<Vec<u64>>,
    latency_next: AtomicU64,
}

/// A point-in-time view of [`Metrics`] with computed percentiles.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests accepted into a replica queue.
    pub requests: u64,
    /// Requests that completed with a scoring error.
    pub errors: u64,
    /// Requests shed with `503` because the routed replica's queue was full.
    pub rejected: u64,
    /// Requests currently queued or being scored, across all replicas.
    pub queue_depth: u64,
    /// Queue depth per scoring replica.
    pub replica_depth: Vec<u64>,
    /// Batches flushed by the replicas.
    pub batches: u64,
    /// Requests per flushed batch, bucketed by [`BATCH_BUCKETS`].
    pub batch_hist: Vec<u64>,
    /// Connections accepted since startup.
    pub conns_accepted: u64,
    /// Connections currently open.
    pub conns_active: u64,
    /// Median request latency in µs (enqueue → reply), over the last
    /// `4096` requests.
    pub p50_us: u64,
    /// 95th-percentile latency in µs.
    pub p95_us: u64,
    /// 99th-percentile latency in µs.
    pub p99_us: u64,
    /// Process-wide out-of-core graph-store counters (resident cache,
    /// bytes read, evictions) — all zero when serving in-memory graphs.
    pub graph_store: StoreStats,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Size the per-replica queue gauges (called once by the engine at
    /// startup; later calls are ignored).
    pub fn init_replicas(&self, replicas: usize) {
        let _ = self
            .replica_depth
            .set((0..replicas.max(1)).map(|_| AtomicU64::new(0)).collect());
    }

    /// Count an accepted request.
    pub fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a request that completed with an error reply.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a request shed by backpressure.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// A request entered `replica`'s queue.
    pub fn queue_inc(&self, replica: usize) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
        if let Some(depths) = self.replica_depth.get() {
            if let Some(depth) = depths.get(replica) {
                depth.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// A request left `replica`'s queue (replied or failed).
    pub fn queue_dec(&self, replica: usize) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        if let Some(depths) = self.replica_depth.get() {
            if let Some(depth) = depths.get(replica) {
                depth.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    /// A connection was accepted.
    pub fn conn_opened(&self) {
        self.conns_accepted.fetch_add(1, Ordering::Relaxed);
        self.conns_active.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection was closed.
    pub fn conn_closed(&self) {
        self.conns_active.fetch_sub(1, Ordering::Relaxed);
    }

    /// Record one replica flush of `size` requests.
    pub fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        let idx = BATCH_BUCKETS
            .iter()
            .position(|&cap| size <= cap)
            .unwrap_or(BATCH_BUCKETS.len() - 1);
        self.batch_hist[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Record one request's end-to-end latency.
    pub fn record_latency_us(&self, us: u64) {
        let mut ring = self.latencies_us.lock().unwrap();
        if ring.len() < LATENCY_RING {
            ring.push(us);
        } else {
            let at = self.latency_next.fetch_add(1, Ordering::Relaxed) as usize % LATENCY_RING;
            ring[at] = us;
        }
    }

    /// Current values with percentiles computed from the latency ring.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut lat = self.latencies_us.lock().unwrap().clone();
        lat.sort_unstable();
        let pct = |p: f64| -> u64 {
            if lat.is_empty() {
                0
            } else {
                let idx = ((lat.len() as f64 - 1.0) * p).round() as usize;
                lat[idx.min(lat.len() - 1)]
            }
        };
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            replica_depth: self
                .replica_depth
                .get()
                .map(|depths| depths.iter().map(|d| d.load(Ordering::Relaxed)).collect())
                .unwrap_or_default(),
            batches: self.batches.load(Ordering::Relaxed),
            batch_hist: self
                .batch_hist
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            conns_accepted: self.conns_accepted.load(Ordering::Relaxed),
            conns_active: self.conns_active.load(Ordering::Relaxed),
            p50_us: pct(0.50),
            p95_us: pct(0.95),
            p99_us: pct(0.99),
            graph_store: global_store_stats(),
        }
    }
}

impl MetricsSnapshot {
    /// Render as the `GET /metrics` JSON body.
    pub fn render_json(&self) -> String {
        let hist: Vec<String> = BATCH_BUCKETS
            .iter()
            .zip(&self.batch_hist)
            .map(|(&cap, &count)| {
                let le = if cap == usize::MAX {
                    "\"inf\"".to_string()
                } else {
                    cap.to_string()
                };
                format!("{{\"le\":{le},\"count\":{count}}}")
            })
            .collect();
        let depths: Vec<String> = self.replica_depth.iter().map(u64::to_string).collect();
        format!(
            "{{\"requests\":{},\"errors\":{},\"rejected\":{},\"queue_depth\":{},\
             \"replica_queue_depth\":[{}],\
             \"connections\":{{\"accepted\":{},\"active\":{}}},\
             \"batches\":{},\"latency_us\":{{\"p50\":{},\"p95\":{},\"p99\":{}}},\
             \"batch_size_hist\":[{}],\
             \"graph_store\":{{\"resident_blocks\":{},\"resident_bytes\":{},\
             \"bytes_read\":{},\"evictions\":{},\"hits\":{},\"misses\":{}}}}}",
            self.requests,
            self.errors,
            self.rejected,
            self.queue_depth,
            depths.join(","),
            self.conns_accepted,
            self.conns_active,
            self.batches,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            hist.join(","),
            self.graph_store.resident_blocks,
            self.graph_store.resident_bytes,
            self.graph_store.bytes_read,
            self.graph_store.evictions,
            self.graph_store.hits,
            self.graph_store.misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_percentiles() {
        let m = Metrics::new();
        m.init_replicas(2);
        for _ in 0..10 {
            m.record_request();
        }
        m.record_error();
        m.record_rejected();
        m.queue_inc(0);
        m.queue_inc(1);
        m.queue_dec(1);
        for us in 1..=100u64 {
            m.record_latency_us(us);
        }
        m.record_batch(1);
        m.record_batch(3);
        m.record_batch(100);
        m.conn_opened();
        m.conn_opened();
        m.conn_closed();
        let s = m.snapshot();
        assert_eq!(s.requests, 10);
        assert_eq!(s.errors, 1);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.queue_depth, 1);
        assert_eq!(s.replica_depth, vec![1, 0]);
        assert_eq!(s.conns_accepted, 2);
        assert_eq!(s.conns_active, 1);
        assert_eq!(s.batches, 3);
        // Values are 1..=100; nearest-rank over indices 0..=99.
        assert_eq!(s.p50_us, 51);
        assert_eq!(s.p95_us, 95);
        assert_eq!(s.p99_us, 99);
        assert_eq!(s.batch_hist[0], 1); // size 1
        assert_eq!(s.batch_hist[2], 1); // size 3 → ≤4
        assert_eq!(s.batch_hist[6], 1); // size 100 → inf
    }

    #[test]
    fn replica_gauges_size_once_and_ignore_out_of_range() {
        let m = Metrics::new();
        // Before init: global depth still tracks.
        m.queue_inc(0);
        assert_eq!(m.snapshot().queue_depth, 1);
        assert!(m.snapshot().replica_depth.is_empty());
        m.queue_dec(0);
        m.init_replicas(3);
        m.init_replicas(8); // ignored — first size wins
        m.queue_inc(2);
        m.queue_inc(99); // out of range: global only, no panic
        let s = m.snapshot();
        assert_eq!(s.replica_depth, vec![0, 0, 1]);
        assert_eq!(s.queue_depth, 2);
    }

    #[test]
    fn latency_ring_wraps_instead_of_growing() {
        let m = Metrics::new();
        for us in 0..10_000u64 {
            m.record_latency_us(us);
        }
        assert_eq!(m.latencies_us.lock().unwrap().len(), LATENCY_RING);
    }

    #[test]
    fn metrics_json_is_parseable() {
        let m = Metrics::new();
        m.init_replicas(2);
        m.record_batch(4);
        m.record_latency_us(7);
        m.conn_opened();
        let body = m.snapshot().render_json();
        let v = crate::json::Json::parse(&body).unwrap();
        assert_eq!(v.get("batches").unwrap().as_u64(), Some(1));
        assert_eq!(
            v.get("latency_us").unwrap().get("p50").unwrap().as_u64(),
            Some(7)
        );
        assert_eq!(
            v.get("replica_queue_depth")
                .unwrap()
                .as_arr()
                .unwrap()
                .len(),
            2
        );
        assert_eq!(
            v.get("connections")
                .unwrap()
                .get("accepted")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        assert_eq!(
            v.get("batch_size_hist").unwrap().as_arr().unwrap().len(),
            BATCH_BUCKETS.len()
        );
        // Graph-store counters are present (zero unless an OocStore is
        // live in this process).
        assert!(v
            .get("graph_store")
            .unwrap()
            .get("resident_bytes")
            .unwrap()
            .as_u64()
            .is_some());
    }
}
