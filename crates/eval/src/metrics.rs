//! AUC-family metrics (Eq. 21–22 of the VGOD paper).

/// Tie-corrected AUC: the probability that a uniformly random outlier is
/// scored above a uniformly random normal node, with ties counting ½
/// (equivalently, the normalised Mann–Whitney U statistic).
///
/// Returns 0.5 when either class is empty.
///
/// # Panics
/// Panics if `scores` and `is_outlier` lengths differ or any score is NaN.
pub fn auc(scores: &[f32], is_outlier: &[bool]) -> f32 {
    assert_eq!(scores.len(), is_outlier.len(), "auc: length mismatch");
    assert!(scores.iter().all(|s| !s.is_nan()), "auc: NaN score");
    let n_pos = is_outlier.iter().filter(|&&o| o).count();
    let n_neg = is_outlier.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Rank-based computation with average ranks for ties: O(n log n).
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_unstable_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("no NaN"));
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        // Average 1-based rank of the tie group [i, j].
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            if is_outlier[idx] {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_pos - (n_pos as f64 * (n_pos as f64 + 1.0)) / 2.0;
    (u / (n_pos as f64 * n_neg as f64)) as f32
}

/// `AUC(V_L, O)` (paper notation): AUC using `subset_is_outlier` as the
/// positive labels over *all* scored nodes.
pub fn auc_subset(scores: &[f32], subset_is_outlier: &[bool]) -> f32 {
    auc(scores, subset_is_outlier)
}

/// AUC of one outlier *group* against the normal nodes only (used for the
/// per-clique-size curves of Fig. 6 / Fig. 8): positives are `group`
/// members, negatives are nodes that are normal under the full ground truth
/// `is_any_outlier`, and other outliers are excluded from the comparison.
pub fn auc_group_vs_normal(scores: &[f32], group: &[u32], is_any_outlier: &[bool]) -> f32 {
    let mut in_group = vec![false; scores.len()];
    for &u in group {
        in_group[u as usize] = true;
    }
    let mut sub_scores = Vec::with_capacity(scores.len());
    let mut sub_labels = Vec::with_capacity(scores.len());
    for i in 0..scores.len() {
        if in_group[i] {
            sub_scores.push(scores[i]);
            sub_labels.push(true);
        } else if !is_any_outlier[i] {
            sub_scores.push(scores[i]);
            sub_labels.push(false);
        }
    }
    auc(&sub_scores, &sub_labels)
}

/// `AucGap` (Eq. 22): `max(a/b, b/a)` for the structural-outlier AUC `a`
/// and the contextual-outlier AUC `b` of one model. 1.0 is perfectly
/// balanced; larger is worse.
pub fn auc_gap(auc_structural: f32, auc_contextual: f32) -> f32 {
    let (a, b) = (auc_structural.max(1e-9), auc_contextual.max(1e-9));
    (a / b).max(b / a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_is_one() {
        let scores = [0.1, 0.2, 0.9, 0.8];
        let labels = [false, false, true, true];
        assert_eq!(auc(&scores, &labels), 1.0);
    }

    #[test]
    fn inverted_ranking_is_zero() {
        let scores = [0.9, 0.8, 0.1, 0.2];
        let labels = [false, false, true, true];
        assert_eq!(auc(&scores, &labels), 0.0);
    }

    #[test]
    fn all_ties_is_half() {
        let scores = [0.5; 6];
        let labels = [true, false, true, false, false, false];
        assert!((auc(&scores, &labels) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn known_mixed_case() {
        // outlier scores {3, 1}, normal {2, 0}: pairs (3>2),(3>0),(1<2),(1>0) → 3/4.
        let scores = [3.0, 1.0, 2.0, 0.0];
        let labels = [true, true, false, false];
        assert!((auc(&scores, &labels) - 0.75).abs() < 1e-6);
    }

    #[test]
    fn degenerate_classes_give_half() {
        assert_eq!(auc(&[1.0, 2.0], &[false, false]), 0.5);
        assert_eq!(auc(&[1.0, 2.0], &[true, true]), 0.5);
        assert_eq!(auc(&[], &[]), 0.5);
    }

    #[test]
    fn group_vs_normal_excludes_other_outliers() {
        // Nodes: 0 (group A outlier, score 5), 1 (group B outlier, score 9),
        // 2..4 normals with scores 1, 2, 3.
        let scores = [5.0, 9.0, 1.0, 2.0, 3.0];
        let any = [true, true, false, false, false];
        // Group A vs normals: 5 beats all three normals → 1.0 even though
        // group B scored higher.
        assert_eq!(auc_group_vs_normal(&scores, &[0], &any), 1.0);
        // A weak group: score below every normal → 0.0.
        let scores2 = [0.5, 9.0, 1.0, 2.0, 3.0];
        assert_eq!(auc_group_vs_normal(&scores2, &[0], &any), 0.0);
    }

    #[test]
    fn auc_gap_is_symmetric_and_at_least_one() {
        assert!((auc_gap(0.9, 0.6) - 1.5).abs() < 1e-6);
        assert!((auc_gap(0.6, 0.9) - 1.5).abs() < 1e-6);
        assert_eq!(auc_gap(0.8, 0.8), 1.0);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn case() -> impl Strategy<Value = (Vec<f32>, Vec<bool>)> {
            (2usize..40).prop_flat_map(|n| {
                (
                    proptest::collection::vec(-100.0f32..100.0, n),
                    proptest::collection::vec(any::<bool>(), n),
                )
            })
        }

        proptest! {
            #[test]
            fn auc_in_unit_interval((scores, labels) in case()) {
                let a = auc(&scores, &labels);
                prop_assert!((0.0..=1.0).contains(&a));
            }

            #[test]
            fn auc_invariant_under_monotone_transform((scores, labels) in case()) {
                let a = auc(&scores, &labels);
                let transformed: Vec<f32> = scores.iter().map(|&s| (s * 0.01).exp() * 3.0 + 7.0).collect();
                let b = auc(&transformed, &labels);
                prop_assert!((a - b).abs() < 1e-4, "{a} vs {b}");
            }

            #[test]
            fn negated_scores_mirror_auc((scores, labels) in case()) {
                let a = auc(&scores, &labels);
                let neg: Vec<f32> = scores.iter().map(|&s| -s).collect();
                let b = auc(&neg, &labels);
                // With ties the mirror is exact too (ties contribute ½ both ways).
                prop_assert!((a + b - 1.0).abs() < 1e-4, "{a} + {b} != 1");
            }

            #[test]
            fn matches_quadratic_reference((scores, labels) in case()) {
                let fast = auc(&scores, &labels);
                // O(n²) direct definition (Eq. 21 with ties counted ½).
                let mut wins = 0.0f64;
                let mut pairs = 0.0f64;
                for i in 0..scores.len() {
                    if !labels[i] { continue; }
                    for j in 0..scores.len() {
                        if labels[j] { continue; }
                        pairs += 1.0;
                        if scores[i] > scores[j] { wins += 1.0; }
                        else if scores[i] == scores[j] { wins += 0.5; }
                    }
                }
                let slow = if pairs == 0.0 { 0.5 } else { (wins / pairs) as f32 };
                prop_assert!((fast - slow).abs() < 1e-4, "fast {fast} slow {slow}");
            }
        }
    }
}
