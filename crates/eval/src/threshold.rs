//! Turning scores into decisions: contamination thresholding, confusion
//! counts, F1 — and bootstrap confidence intervals for AUC.
//!
//! The paper evaluates with threshold-free AUC; deployments need a cutoff.
//! The standard unsupervised choice (as in PyOD/PyGOD) flags the top
//! `contamination` fraction of scores.

use rand::Rng;

/// Binary predictions flagging the `contamination` fraction of
/// highest-scoring nodes (ties broken by index, matching
/// [`crate::top_k`]).
pub fn predict_by_contamination(scores: &[f32], contamination: f32) -> Vec<bool> {
    assert!(
        (0.0..=1.0).contains(&contamination),
        "contamination must be a fraction, got {contamination}"
    );
    let k = ((scores.len() as f32 * contamination).round() as usize).min(scores.len());
    let mut out = vec![false; scores.len()];
    for i in crate::top_k(scores, k) {
        out[i] = true;
    }
    out
}

/// Confusion-matrix counts for binary outlier predictions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Confusion {
    /// Flagged and truly outlier.
    pub true_positives: usize,
    /// Flagged but normal.
    pub false_positives: usize,
    /// Missed outlier.
    pub false_negatives: usize,
    /// Correctly unflagged.
    pub true_negatives: usize,
}

impl Confusion {
    /// Tally predictions against ground truth.
    pub fn from_predictions(predicted: &[bool], actual: &[bool]) -> Self {
        assert_eq!(predicted.len(), actual.len(), "confusion: length mismatch");
        let mut c = Confusion {
            true_positives: 0,
            false_positives: 0,
            false_negatives: 0,
            true_negatives: 0,
        };
        for (&p, &a) in predicted.iter().zip(actual) {
            match (p, a) {
                (true, true) => c.true_positives += 1,
                (true, false) => c.false_positives += 1,
                (false, true) => c.false_negatives += 1,
                (false, false) => c.true_negatives += 1,
            }
        }
        c
    }

    /// Precision `TP / (TP + FP)` (0.0 when nothing was flagged).
    pub fn precision(&self) -> f32 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f32 / denom as f32
        }
    }

    /// Recall `TP / (TP + FN)` (0.0 when there are no outliers).
    pub fn recall(&self) -> f32 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f32 / denom as f32
        }
    }

    /// F1 score (harmonic mean of precision and recall; 0.0 when both are 0).
    pub fn f1(&self) -> f32 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Percentile-bootstrap confidence interval for the AUC: resample nodes
/// with replacement `resamples` times and take the `(α/2, 1 − α/2)`
/// percentiles of the resampled AUCs. Returns `(low, high)`.
pub fn auc_bootstrap_ci(
    scores: &[f32],
    is_outlier: &[bool],
    resamples: usize,
    alpha: f32,
    rng: &mut impl Rng,
) -> (f32, f32) {
    assert_eq!(scores.len(), is_outlier.len(), "bootstrap: length mismatch");
    assert!(resamples >= 2 && (0.0..1.0).contains(&alpha));
    let n = scores.len();
    let mut aucs = Vec::with_capacity(resamples);
    let mut s = Vec::with_capacity(n);
    let mut l = Vec::with_capacity(n);
    for _ in 0..resamples {
        s.clear();
        l.clear();
        for _ in 0..n {
            let i = rng.gen_range(0..n);
            s.push(scores[i]);
            l.push(is_outlier[i]);
        }
        aucs.push(crate::auc(&s, &l));
    }
    aucs.sort_by(f32::total_cmp);
    let lo_idx = ((alpha / 2.0) * resamples as f32) as usize;
    let hi_idx = (((1.0 - alpha / 2.0) * resamples as f32) as usize).min(resamples - 1);
    (aucs[lo_idx], aucs[hi_idx])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn contamination_flags_top_fraction() {
        let scores = [0.1, 0.9, 0.5, 0.8];
        let pred = predict_by_contamination(&scores, 0.5);
        assert_eq!(pred, vec![false, true, false, true]);
        assert!(predict_by_contamination(&scores, 0.0).iter().all(|&p| !p));
        assert!(predict_by_contamination(&scores, 1.0).iter().all(|&p| p));
    }

    #[test]
    fn confusion_and_f1_on_known_case() {
        let pred = [true, true, false, false];
        let actual = [true, false, true, false];
        let c = Confusion::from_predictions(&pred, &actual);
        assert_eq!(
            c,
            Confusion {
                true_positives: 1,
                false_positives: 1,
                false_negatives: 1,
                true_negatives: 1
            }
        );
        assert_eq!(c.precision(), 0.5);
        assert_eq!(c.recall(), 0.5);
        assert_eq!(c.f1(), 0.5);
    }

    #[test]
    fn degenerate_confusions() {
        let c = Confusion::from_predictions(&[false, false], &[false, false]);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn bootstrap_ci_brackets_point_estimate() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let n = 300;
        let scores: Vec<f32> = (0..n)
            .map(|i| i as f32 + if i % 7 == 0 { 50.0 } else { 0.0 })
            .collect();
        let labels: Vec<bool> = (0..n).map(|i| i % 7 == 0).collect();
        let point = crate::auc(&scores, &labels);
        let (lo, hi) = auc_bootstrap_ci(&scores, &labels, 200, 0.05, &mut rng);
        assert!(
            lo <= point && point <= hi,
            "CI [{lo}, {hi}] should bracket {point}"
        );
        assert!(hi - lo < 0.25, "CI [{lo}, {hi}] suspiciously wide");
    }

    #[test]
    fn bootstrap_ci_is_tighter_with_more_data() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let make = |n: usize| -> (Vec<f32>, Vec<bool>) {
            (
                (0..n)
                    .map(|i| (i % 13) as f32 + if i % 5 == 0 { 6.0 } else { 0.0 })
                    .collect(),
                (0..n).map(|i| i % 5 == 0).collect(),
            )
        };
        let (s1, l1) = make(60);
        let (s2, l2) = make(1200);
        let (lo1, hi1) = auc_bootstrap_ci(&s1, &l1, 150, 0.05, &mut rng);
        let (lo2, hi2) = auc_bootstrap_ci(&s2, &l2, 150, 0.05, &mut rng);
        assert!(hi2 - lo2 < hi1 - lo1, "more data should tighten the CI");
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn f1_in_unit_interval(
                pred in proptest::collection::vec(any::<bool>(), 1..50),
                seed in 0u64..100
            ) {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let actual: Vec<bool> = (0..pred.len()).map(|_| rand::Rng::gen_bool(&mut rng, 0.3)).collect();
                let c = Confusion::from_predictions(&pred, &actual);
                prop_assert!((0.0..=1.0).contains(&c.f1()));
                let total = c.true_positives + c.false_positives + c.false_negatives + c.true_negatives;
                prop_assert_eq!(total, pred.len());
            }

            #[test]
            fn contamination_count_is_exact(
                scores in proptest::collection::vec(-5.0f32..5.0, 1..60),
                contamination in 0.0f32..1.0
            ) {
                let pred = predict_by_contamination(&scores, contamination);
                let expected = ((scores.len() as f32 * contamination).round() as usize).min(scores.len());
                prop_assert_eq!(pred.iter().filter(|&&p| p).count(), expected);
            }
        }
    }
}
