//! # vgod-eval
//!
//! Evaluation machinery for unsupervised node outlier detection:
//!
//! * tie-corrected [`auc`] (Eq. 21 of the VGOD paper) and the subset variant
//!   [`auc_subset`] / [`auc_group_vs_normal`] used for per-type and
//!   per-clique-size evaluation;
//! * [`auc_gap`] (Eq. 22) — the paper's balance metric;
//! * score normalisation: [`mean_std_normalize`] (Eq. 19) and
//!   [`sum_to_unit_normalize`] (Eq. 23);
//! * the [`OutlierDetector`] trait implemented by every model in
//!   `vgod-baselines` and `vgod` (core), and the [`Scores`] bundle they
//!   produce;
//! * wall-clock [`time_it`] helper for the efficiency experiments (Fig. 7,
//!   Table VII).

#![warn(missing_docs)]

mod delta;
mod detector;
mod metrics;
mod normalize;
mod ranking;
mod threshold;

pub use delta::{apply_mutation_rescore, dirty_frontier, rescore_frontier, ScoreCache};
pub use detector::{
    assemble_batch_scores, full_graph_view, merge_range_scores, range_score_batches,
    refit_score_store, refit_score_store_range, score_sampled_batch_range, score_sampled_batches,
    DeltaCapability, OutlierDetector, RangeScores, ScoreMerge, Scores,
};
pub use metrics::{auc, auc_gap, auc_group_vs_normal, auc_subset};
pub use normalize::{
    combine_mean_std, combine_sum_to_unit, mean_std_normalize, sum_to_unit_normalize,
};
pub use ranking::{average_precision, precision_at_k, recall_at_k, top_k};
pub use threshold::{auc_bootstrap_ci, predict_by_contamination, Confusion};

use std::time::{Duration, Instant};

/// Run `f`, returning its result together with the elapsed wall-clock time.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}
