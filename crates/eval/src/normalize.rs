//! Score normalisation and combination strategies (Eq. 19 & 23).

/// Mean-std (z-score) normalisation: `(o_i − μ(O)) / std(O)` (Eq. 19).
/// A constant score vector normalises to all-zeros.
pub fn mean_std_normalize(scores: &[f32]) -> Vec<f32> {
    let n = scores.len();
    if n == 0 {
        return Vec::new();
    }
    let mean = scores.iter().sum::<f32>() / n as f32;
    let var = scores.iter().map(|s| (s - mean) * (s - mean)).sum::<f32>() / n as f32;
    let std = var.sqrt();
    if std <= f32::MIN_POSITIVE {
        return vec![0.0; n];
    }
    scores.iter().map(|s| (s - mean) / std).collect()
}

/// Sum-to-unit normalisation (Eq. 23): `o_i / Σ_j o_j`. Scores are first
/// shifted so the minimum is zero (the paper requires positive scores).
/// A constant score vector normalises to the uniform vector `1/n`.
pub fn sum_to_unit_normalize(scores: &[f32]) -> Vec<f32> {
    let n = scores.len();
    if n == 0 {
        return Vec::new();
    }
    let min = scores.iter().copied().fold(f32::INFINITY, f32::min);
    let shifted: Vec<f32> = scores.iter().map(|s| s - min.min(0.0)).collect();
    let total: f32 = shifted.iter().sum();
    if total <= f32::MIN_POSITIVE {
        return vec![1.0 / n as f32; n];
    }
    shifted.iter().map(|s| s / total).collect()
}

/// The paper's final score combination (Eq. 19): mean-std normalise each
/// score vector independently, then sum elementwise.
pub fn combine_mean_std(structural: &[f32], contextual: &[f32]) -> Vec<f32> {
    assert_eq!(
        structural.len(),
        contextual.len(),
        "combine: length mismatch"
    );
    let a = mean_std_normalize(structural);
    let b = mean_std_normalize(contextual);
    a.iter().zip(&b).map(|(x, y)| x + y).collect()
}

/// The "sum-to-unit" combination ablated in Appendix A (Eq. 23).
pub fn combine_sum_to_unit(structural: &[f32], contextual: &[f32]) -> Vec<f32> {
    assert_eq!(
        structural.len(),
        contextual.len(),
        "combine: length mismatch"
    );
    let a = sum_to_unit_normalize(structural);
    let b = sum_to_unit_normalize(contextual);
    a.iter().zip(&b).map(|(x, y)| x + y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_yields_zero_mean_unit_std() {
        let s = [1.0, 2.0, 3.0, 4.0, 10.0];
        let z = mean_std_normalize(&s);
        let mean: f32 = z.iter().sum::<f32>() / z.len() as f32;
        let var: f32 = z.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / z.len() as f32;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-4);
    }

    #[test]
    fn constant_scores_do_not_blow_up() {
        assert_eq!(mean_std_normalize(&[3.0, 3.0, 3.0]), vec![0.0, 0.0, 0.0]);
        let u = sum_to_unit_normalize(&[3.0, 3.0, 3.0]);
        assert!(u.iter().all(|&v| (v - 1.0 / 3.0).abs() < 1e-6));
    }

    #[test]
    fn sum_to_unit_sums_to_one() {
        let s = [0.5, 1.5, 3.0];
        let u = sum_to_unit_normalize(&s);
        assert!((u.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        // Order preserved.
        assert!(u[0] < u[1] && u[1] < u[2]);
    }

    #[test]
    fn sum_to_unit_handles_negative_scores() {
        let u = sum_to_unit_normalize(&[-2.0, 0.0, 2.0]);
        assert!(u.iter().all(|&v| v >= 0.0));
        assert!((u.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn combination_balances_scales() {
        // Structural scores on a huge scale, contextual tiny: after mean-std
        // combination, a node leading either ranking should lead the sum.
        let structural = [1000.0, 0.0, 0.0, 0.0];
        let contextual = [0.0, 0.001, 0.0, 0.0];
        let combined = combine_mean_std(&structural, &contextual);
        assert!(combined[0] > combined[2]);
        assert!(combined[1] > combined[2]);
        // The two outliers sit well above the two normals.
        assert!(combined[0] > 0.0 && combined[1] > 0.0);
        assert!(combined[2] < 0.0 && combined[3] < 0.0);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn mean_std_preserves_ranking(s in proptest::collection::vec(-50.0f32..50.0, 2..30)) {
                let z = mean_std_normalize(&s);
                for i in 0..s.len() {
                    for j in 0..s.len() {
                        if s[i] < s[j] {
                            prop_assert!(z[i] <= z[j]);
                        }
                    }
                }
            }

            #[test]
            fn sum_to_unit_is_distribution(s in proptest::collection::vec(-50.0f32..50.0, 1..30)) {
                let u = sum_to_unit_normalize(&s);
                prop_assert!(u.iter().all(|&v| (0.0..=1.0 + 1e-5).contains(&v)));
                prop_assert!((u.iter().sum::<f32>() - 1.0).abs() < 1e-4);
            }
        }
    }
}
