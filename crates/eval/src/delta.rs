//! Delta rescoring: after a graph mutation, recompute only the scores
//! that can have changed.
//!
//! For a detector declaring [`DeltaCapability::Local`]`{ hops, merge }`,
//! a mutation batch touching nodes `T` can only move the raw score
//! channels of the frontier `B_hops(T)` (every touched endpoint, former
//! neighbour of a removed edge, and node within `hops` of one). The delta
//! path:
//!
//! 1. frontier = `B_hops(T)` on the post-mutation graph
//!    ([`dirty_frontier`]);
//! 2. closure = `B_hops(frontier)` — the exact induced subgraph on the
//!    closure reproduces every frontier node's receptive field *and* the
//!    degrees its kernels normalise by;
//! 3. run the detector's ordinary `score` on the closure subgraph and
//!    keep the frontier rows ([`rescore_frontier`]);
//! 4. overwrite those rows in the cached full-length channels and re-apply
//!    the global merge rule ([`ScoreCache::patch`]).
//!
//! Byte-identity with a from-scratch full rescore rests on two invariants
//! proven elsewhere in the workspace: the closure subgraph relabels nodes
//! in sorted-id order, so per-row neighbour aggregation preserves the full
//! graph's accumulation order ([`vgod_graph::induced_store_subgraph`]);
//! and every tensor kernel fixes its per-row accumulation order regardless
//! of row count (the determinism contract in `vgod-tensor`). Non-`Concat`
//! merges reuse the same combine kernels the sharded scoring coordinator
//! runs over concatenated channels — the precedent for "patch raw
//! channels, recombine globally" being exact.

use vgod_graph::{induced_store_subgraph, k_hop_ball, GraphStore};

use crate::detector::{DeltaCapability, OutlierDetector, ScoreMerge, Scores};
use crate::{combine_mean_std, combine_sum_to_unit};

/// The dirty frontier of a mutation batch: every node whose raw score
/// channels can have changed, i.e. the ball `B_hops(touched)` on the
/// post-mutation graph. `touched` must already include the former
/// neighbours of removed edges / tombstoned nodes (the overlay's
/// `BatchEffect` guarantees this). Sorted.
pub fn dirty_frontier(store: &dyn GraphStore, touched: &[u32], hops: usize) -> Vec<u32> {
    k_hop_ball(store, touched, hops)
}

/// Rescore a frontier exactly: extract the closure `B_hops(frontier)` as a
/// sorted-id induced subgraph, run the detector's ordinary full-graph
/// `score` on it, and return the frontier rows of every channel (rows
/// aligned with `frontier`, which must be sorted).
///
/// The returned `combined` is subgraph-local and only meaningful when the
/// detector's merge rule is [`ScoreMerge::Concat`]; for global rules the
/// caller patches the raw channels and recombines ([`ScoreCache::patch`]
/// does both).
pub fn rescore_frontier(
    det: &dyn OutlierDetector,
    store: &dyn GraphStore,
    frontier: &[u32],
    hops: usize,
) -> Scores {
    let closure = k_hop_ball(store, frontier, hops);
    let sub = induced_store_subgraph(store, &closure);
    let scores = sub_scores(det, &sub);
    // frontier ⊆ closure, both sorted: one merge scan selects the rows.
    let mut rows = Vec::with_capacity(frontier.len());
    let mut pos = 0usize;
    for &u in frontier {
        while closure[pos] != u {
            pos += 1;
        }
        rows.push(pos);
    }
    let select = |v: &Vec<f32>| -> Vec<f32> { rows.iter().map(|&i| v[i]).collect() };
    Scores {
        combined: select(&scores.combined),
        structural: scores.structural.as_ref().map(select),
        contextual: scores.contextual.as_ref().map(select),
    }
}

fn sub_scores(det: &dyn OutlierDetector, sub: &vgod_graph::AttributedGraph) -> Scores {
    det.score(sub)
}

/// A model's served scores: full-length raw channels plus the merge rule
/// that combines them. The streaming engine keeps one per loaded model,
/// patches the frontier rows after each mutation batch, and publishes the
/// recombined `combined` vector.
#[derive(Clone, Debug)]
pub struct ScoreCache {
    channels: Scores,
    merge: ScoreMerge,
}

impl ScoreCache {
    /// Cache a full scoring pass. For a [`DeltaCapability::Local`]
    /// detector pass its declared merge rule; for full-rescore models pass
    /// [`ScoreMerge::Concat`] (the combined vector is replaced wholesale).
    pub fn new(full: Scores, merge: ScoreMerge) -> ScoreCache {
        ScoreCache {
            channels: full,
            merge,
        }
    }

    /// The served (combined) scores.
    pub fn combined(&self) -> &[f32] {
        &self.channels.combined
    }

    /// All cached channels.
    pub fn scores(&self) -> &Scores {
        &self.channels
    }

    /// Number of scored nodes.
    pub fn len(&self) -> usize {
        self.channels.combined.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.channels.combined.is_empty()
    }

    /// Extend every channel with zero rows up to `n` nodes (appended nodes
    /// get placeholder scores until the covering patch lands — the
    /// streaming engine always patches a frontier containing them in the
    /// same batch).
    pub fn grow(&mut self, n: usize) {
        if n <= self.len() {
            return;
        }
        self.channels.combined.resize(n, 0.0);
        if let Some(v) = &mut self.channels.structural {
            v.resize(n, 0.0);
        }
        if let Some(v) = &mut self.channels.contextual {
            v.resize(n, 0.0);
        }
    }

    /// Overwrite the frontier rows with freshly rescored channels and
    /// re-apply the merge rule. `delta` rows align with `frontier`
    /// (as returned by [`rescore_frontier`]).
    ///
    /// # Panics
    /// Panics if a frontier id is out of range, or a non-`Concat` merge is
    /// missing a channel on either side.
    pub fn patch(&mut self, frontier: &[u32], delta: &Scores) {
        match self.merge {
            ScoreMerge::Concat => {
                // The combined score is itself local: patch it directly,
                // and keep any present channels in sync.
                for (i, &u) in frontier.iter().enumerate() {
                    self.channels.combined[u as usize] = delta.combined[i];
                }
                patch_channel(&mut self.channels.structural, &delta.structural, frontier);
                patch_channel(&mut self.channels.contextual, &delta.contextual, frontier);
            }
            merge => {
                let structural = self
                    .channels
                    .structural
                    .as_mut()
                    .expect("merge rule needs a structural channel");
                let from = delta
                    .structural
                    .as_ref()
                    .expect("delta is missing the structural channel");
                for (i, &u) in frontier.iter().enumerate() {
                    structural[u as usize] = from[i];
                }
                let contextual = self
                    .channels
                    .contextual
                    .as_mut()
                    .expect("merge rule needs a contextual channel");
                let from = delta
                    .contextual
                    .as_ref()
                    .expect("delta is missing the contextual channel");
                for (i, &u) in frontier.iter().enumerate() {
                    contextual[u as usize] = from[i];
                }
                // Recombine globally with the same kernels a full pass
                // uses — byte-identical to scoring from scratch.
                let structural = self.channels.structural.as_deref().unwrap();
                let contextual = self.channels.contextual.as_deref().unwrap();
                self.channels.combined = match merge {
                    ScoreMerge::Concat => unreachable!(),
                    ScoreMerge::MeanStd => combine_mean_std(structural, contextual),
                    ScoreMerge::SumToUnit => combine_sum_to_unit(structural, contextual),
                    ScoreMerge::Weighted(alpha) => structural
                        .iter()
                        .zip(contextual)
                        .map(|(&s, &c)| alpha * s + (1.0 - alpha) * c)
                        .collect(),
                };
            }
        }
    }

    /// Replace the cache wholesale (the full-rescore path).
    pub fn replace(&mut self, full: Scores) {
        self.channels = full;
    }
}

fn patch_channel(channel: &mut Option<Vec<f32>>, delta: &Option<Vec<f32>>, frontier: &[u32]) {
    if let (Some(channel), Some(delta)) = (channel, delta) {
        for (i, &u) in frontier.iter().enumerate() {
            channel[u as usize] = delta[i];
        }
    }
}

/// One delta-rescoring step for any capability: given the post-mutation
/// store, the touched set, and the model's cache, bring the cache up to
/// date. Returns the frontier size (0 for full/refit passes, which
/// invalidate everything). This is the `crates/eval` entry point the
/// streaming engine calls per applied batch.
pub fn apply_mutation_rescore(
    det: &dyn OutlierDetector,
    store: &dyn GraphStore,
    touched: &[u32],
    cache: &mut ScoreCache,
) -> usize {
    match det.delta_capability() {
        DeltaCapability::Local { hops, .. } => {
            cache.grow(store.num_nodes());
            let frontier = dirty_frontier(store, touched, hops);
            let delta = rescore_frontier(det, store, &frontier, hops);
            cache.patch(&frontier, &delta);
            frontier.len()
        }
        DeltaCapability::FullRescore | DeltaCapability::Refit => {
            // Refit is the caller's responsibility (needs `&mut` detector);
            // here both fall back to a full pass on the mutated graph.
            let g = store.materialize();
            cache.replace(det.score(&g));
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgod_graph::{seeded_rng, AttributedGraph};
    use vgod_tensor::Matrix;

    /// A 1-hop toy detector: score = degree + mean of neighbour attr[0],
    /// raw channels combined with mean-std — exercises both the closure
    /// extraction and the global recombination.
    #[derive(Clone)]
    struct NeighborMean;

    impl OutlierDetector for NeighborMean {
        fn name(&self) -> &'static str {
            "NeighborMean"
        }
        fn fit(&mut self, _g: &AttributedGraph) {}
        fn score(&self, g: &AttributedGraph) -> Scores {
            let structural: Vec<f32> = (0..g.num_nodes() as u32)
                .map(|u| g.degree(u) as f32)
                .collect();
            let contextual: Vec<f32> = (0..g.num_nodes() as u32)
                .map(|u| {
                    let nbrs = g.neighbors(u);
                    if nbrs.is_empty() {
                        return 0.0;
                    }
                    let sum: f32 = nbrs.iter().map(|&v| g.attrs().row(v as usize)[0]).sum();
                    sum / nbrs.len() as f32
                })
                .collect();
            Scores::from_components(structural, contextual)
        }
        fn delta_capability(&self) -> DeltaCapability {
            DeltaCapability::Local {
                hops: 1,
                merge: ScoreMerge::MeanStd,
            }
        }
    }

    fn random_graph(n: usize, seed: u64) -> AttributedGraph {
        use rand::Rng;
        let mut rng = seeded_rng(seed);
        let mut x = Matrix::zeros(n, 2);
        for v in x.as_mut_slice() {
            *v = rng.gen_range(-1.0..1.0);
        }
        let mut g = AttributedGraph::new(x);
        for _ in 0..3 * n {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v {
                g.add_edge(u, v);
            }
        }
        g
    }

    #[test]
    fn patched_cache_is_byte_identical_to_full_rescore() {
        let det = NeighborMean;
        let mut g = random_graph(120, 3);
        let DeltaCapability::Local { merge, .. } = det.delta_capability() else {
            unreachable!()
        };
        let mut cache = ScoreCache::new(det.score(&g), merge);

        // Mutate: one edge in, one out, one attribute row.
        g.add_edge(7, 93);
        g.remove_edge(7, 93); // churn that must not desync the cache
        g.add_edge(11, 54);
        let removed = g.neighbors(20).first().copied();
        let mut touched = vec![7u32, 93, 11, 54, 3];
        if let Some(v) = removed {
            g.remove_edge(20, v);
            touched.extend_from_slice(&[20, v]);
        }
        g.attrs_mut().row_mut(3).copy_from_slice(&[9.0, -9.0]);

        let frontier_size = apply_mutation_rescore(&det, &g, &touched, &mut cache);
        assert!(frontier_size > 0);
        let full = det.score(&g);
        assert_eq!(cache.combined(), full.combined.as_slice());
        assert_eq!(
            cache.scores().structural.as_deref(),
            full.structural.as_deref()
        );
        assert_eq!(
            cache.scores().contextual.as_deref(),
            full.contextual.as_deref()
        );
    }

    #[test]
    fn grow_pads_channels_for_appended_nodes() {
        let g = random_graph(30, 5);
        let det = NeighborMean;
        let mut cache = ScoreCache::new(det.score(&g), ScoreMerge::MeanStd);
        cache.grow(33);
        assert_eq!(cache.len(), 33);
        assert_eq!(cache.scores().structural.as_ref().unwrap().len(), 33);
        cache.grow(10); // never shrinks
        assert_eq!(cache.len(), 33);
    }

    #[test]
    fn full_rescore_capability_replaces_the_cache() {
        #[derive(Clone)]
        struct Global;
        impl OutlierDetector for Global {
            fn name(&self) -> &'static str {
                "Global"
            }
            fn fit(&mut self, _g: &AttributedGraph) {}
            fn score(&self, g: &AttributedGraph) -> Scores {
                // Globally normalised: every score shifts with the sum.
                let total: f32 = (0..g.num_nodes() as u32).map(|u| g.degree(u) as f32).sum();
                Scores::combined_only(
                    (0..g.num_nodes() as u32)
                        .map(|u| g.degree(u) as f32 / total.max(1.0))
                        .collect(),
                )
            }
        }
        let mut g = random_graph(40, 6);
        let det = Global;
        assert_eq!(det.delta_capability(), DeltaCapability::FullRescore);
        let mut cache = ScoreCache::new(det.score(&g), ScoreMerge::Concat);
        g.add_edge(0, 39);
        let frontier = apply_mutation_rescore(&det, &g, &[0, 39], &mut cache);
        assert_eq!(frontier, 0);
        assert_eq!(cache.combined(), det.score(&g).combined.as_slice());
    }
}
