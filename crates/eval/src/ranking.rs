//! Ranking metrics beyond AUC.
//!
//! The BOND benchmark (the paper's reference [9]) reports average precision
//! alongside AUC; practitioners triaging an alarm list care about
//! precision/recall at a cutoff. These complement Eq. 21 for the same
//! score-vector interface.

/// Indices of the `k` highest-scoring nodes (ties broken by index for
/// determinism).
pub fn top_k(scores: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    idx.truncate(k);
    idx
}

/// Precision@k: the fraction of the top-`k` scored nodes that are true
/// outliers. Returns 0.0 when `k == 0`.
pub fn precision_at_k(scores: &[f32], is_outlier: &[bool], k: usize) -> f32 {
    assert_eq!(
        scores.len(),
        is_outlier.len(),
        "precision_at_k: length mismatch"
    );
    if k == 0 {
        return 0.0;
    }
    let k = k.min(scores.len());
    let hits = top_k(scores, k)
        .into_iter()
        .filter(|&i| is_outlier[i])
        .count();
    hits as f32 / k as f32
}

/// Recall@k: the fraction of all true outliers found in the top-`k`.
/// Returns 0.0 when there are no outliers.
pub fn recall_at_k(scores: &[f32], is_outlier: &[bool], k: usize) -> f32 {
    assert_eq!(
        scores.len(),
        is_outlier.len(),
        "recall_at_k: length mismatch"
    );
    let total = is_outlier.iter().filter(|&&o| o).count();
    if total == 0 {
        return 0.0;
    }
    let k = k.min(scores.len());
    let hits = top_k(scores, k)
        .into_iter()
        .filter(|&i| is_outlier[i])
        .count();
    hits as f32 / total as f32
}

/// Average precision (area under the precision–recall curve, computed by
/// the standard rank-walk): the BOND benchmark's second headline metric.
///
/// Ties are handled by deterministic index order (matching [`top_k`]).
/// Returns 0.0 when there are no outliers.
pub fn average_precision(scores: &[f32], is_outlier: &[bool]) -> f32 {
    assert_eq!(
        scores.len(),
        is_outlier.len(),
        "average_precision: length mismatch"
    );
    let total = is_outlier.iter().filter(|&&o| o).count();
    if total == 0 {
        return 0.0;
    }
    let order = top_k(scores, scores.len());
    let mut hits = 0usize;
    let mut ap = 0.0f64;
    for (rank0, &i) in order.iter().enumerate() {
        if is_outlier[i] {
            hits += 1;
            ap += hits as f64 / (rank0 + 1) as f64;
        }
    }
    (ap / total as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_orders_descending() {
        let scores = [0.1, 0.9, 0.5, 0.9];
        assert_eq!(top_k(&scores, 3), vec![1, 3, 2]);
        assert_eq!(top_k(&scores, 0), Vec::<usize>::new());
        assert_eq!(top_k(&scores, 10).len(), 4);
    }

    #[test]
    fn precision_and_recall_on_perfect_ranking() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert_eq!(precision_at_k(&scores, &labels, 2), 1.0);
        assert_eq!(recall_at_k(&scores, &labels, 2), 1.0);
        assert_eq!(precision_at_k(&scores, &labels, 4), 0.5);
        assert_eq!(recall_at_k(&scores, &labels, 1), 0.5);
    }

    #[test]
    fn average_precision_extremes() {
        let labels = [true, true, false, false];
        assert_eq!(average_precision(&[0.9, 0.8, 0.2, 0.1], &labels), 1.0);
        // Worst ranking: outliers last → AP = (1/3 + 2/4)/2.
        let ap = average_precision(&[0.1, 0.2, 0.8, 0.9], &labels);
        assert!((ap - (1.0 / 3.0 + 2.0 / 4.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(average_precision(&[1.0, 2.0], &[false, false]), 0.0);
        assert_eq!(precision_at_k(&[1.0], &[true], 0), 0.0);
        assert_eq!(recall_at_k(&[1.0, 2.0], &[false, false], 1), 0.0);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn case() -> impl Strategy<Value = (Vec<f32>, Vec<bool>)> {
            (1usize..40).prop_flat_map(|n| {
                (
                    proptest::collection::vec(-10.0f32..10.0, n),
                    proptest::collection::vec(any::<bool>(), n),
                )
            })
        }

        proptest! {
            #[test]
            fn metrics_stay_in_unit_interval((scores, labels) in case(), k in 0usize..50) {
                for v in [
                    precision_at_k(&scores, &labels, k),
                    recall_at_k(&scores, &labels, k),
                    average_precision(&scores, &labels),
                ] {
                    prop_assert!((0.0..=1.0).contains(&v), "{v}");
                }
            }

            #[test]
            fn recall_is_monotone_in_k((scores, labels) in case()) {
                let mut last = 0.0f32;
                for k in 0..=scores.len() {
                    let r = recall_at_k(&scores, &labels, k);
                    prop_assert!(r + 1e-6 >= last, "recall dropped at k={k}");
                    last = r;
                }
            }

            #[test]
            fn full_k_recall_is_one_when_outliers_exist((scores, labels) in case()) {
                if labels.iter().any(|&o| o) {
                    prop_assert!((recall_at_k(&scores, &labels, scores.len()) - 1.0).abs() < 1e-6);
                }
            }

            #[test]
            fn ap_no_worse_than_random_baseline_for_perfect((scores, labels) in case()) {
                // AP of scores equal to the labels themselves is 1.0.
                let perfect: Vec<f32> = labels.iter().map(|&o| if o { 1.0 } else { 0.0 }).collect();
                if labels.iter().any(|&o| o) {
                    prop_assert!((average_precision(&perfect, &labels) - 1.0).abs() < 1e-6);
                }
                let _ = scores;
            }
        }
    }
}
