//! The common interface every outlier detector implements.

use std::borrow::Cow;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;

use vgod_graph::{AttributedGraph, GraphStore, NeighborSampler, SampledBatch, SamplingConfig};

use crate::{combine_mean_std, combine_sum_to_unit};

/// Outlier scores produced by a detector for every node of a graph.
///
/// All detectors produce a `combined` score (higher = more anomalous); the
/// ones with score combination (Table II) additionally expose the
/// structural and contextual components so per-type AUCs
/// (`AUC(V⁻, O^str)` etc.) can be computed.
#[derive(Clone, Debug, Default)]
pub struct Scores {
    /// The final per-node outlier score `o_i`.
    pub combined: Vec<f32>,
    /// Structural component `o_i^str`, when the model separates it.
    pub structural: Option<Vec<f32>>,
    /// Contextual component `o_i^attr`, when the model separates it.
    pub contextual: Option<Vec<f32>>,
}

impl Scores {
    /// A score bundle with only a combined score.
    pub fn combined_only(combined: Vec<f32>) -> Self {
        Self {
            combined,
            structural: None,
            contextual: None,
        }
    }

    /// Build from separate structural/contextual scores using the paper's
    /// mean-std combination (Eq. 19).
    pub fn from_components(structural: Vec<f32>, contextual: Vec<f32>) -> Self {
        let combined = combine_mean_std(&structural, &contextual);
        Self {
            combined,
            structural: Some(structural),
            contextual: Some(contextual),
        }
    }

    /// The structural component if present, else the combined score — the
    /// paper's rule for evaluating structural detection of models with
    /// multiple outputs (§VI-C2).
    pub fn structural_or_combined(&self) -> &[f32] {
        self.structural.as_deref().unwrap_or(&self.combined)
    }

    /// The contextual component if present, else the combined score.
    pub fn contextual_or_combined(&self) -> &[f32] {
        self.contextual.as_deref().unwrap_or(&self.combined)
    }

    /// Combined scores for a node subset, in the order requested.
    ///
    /// # Panics
    /// Panics if a node id is out of range.
    pub fn select(&self, nodes: &[u32]) -> Vec<f32> {
        nodes.iter().map(|&u| self.combined[u as usize]).collect()
    }

    /// Keep only the first `len` scores of every present channel (used by
    /// the batched store-scoring paths to drop non-seed rows).
    pub fn truncate_to(&mut self, len: usize) {
        self.combined.truncate(len);
        if let Some(v) = &mut self.structural {
            v.truncate(len);
        }
        if let Some(v) = &mut self.contextual {
            v.truncate(len);
        }
    }

    /// The contiguous row range `[lo, hi)` of every present channel.
    ///
    /// # Panics
    /// Panics if `lo > hi` or `hi` exceeds the score length.
    pub fn slice_range(&self, lo: usize, hi: usize) -> Scores {
        Scores {
            combined: self.combined[lo..hi].to_vec(),
            structural: self.structural.as_ref().map(|v| v[lo..hi].to_vec()),
            contextual: self.contextual.as_ref().map(|v| v[lo..hi].to_vec()),
        }
    }
}

/// How per-range score channels recombine into the global score vector.
///
/// Sharded scoring splits the node set into contiguous ranges, scores each
/// range on its owning shard, and concatenates the raw channels in range
/// order. `Concat` means the concatenated `combined` already *is* the
/// global score (per-batch and streaming detectors). The other rules are
/// the global recombinations proven in the out-of-core work: the combined
/// score is a function of the *full-length* structural/contextual vectors
/// (VGOD Eq. 19 / DegNorm Eq. 20 need global mean/std or global sums), so
/// the coordinator recomputes it after concatenation — byte-identical to
/// the single-process pass because it runs the same combine kernels on the
/// same inputs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ScoreMerge {
    /// Concatenated combined scores are final.
    Concat,
    /// Recombine with the paper's mean-std rule (Eq. 19).
    MeanStd,
    /// Recombine with sum-to-unit normalisation (Eq. 23).
    SumToUnit,
    /// `alpha * structural + (1 - alpha) * contextual`, elementwise.
    Weighted(f32),
}

impl ScoreMerge {
    /// Stable textual form used on the shard wire protocol
    /// (`concat`, `mean-std`, `sum-to-unit`, `weighted:<alpha>`).
    pub fn wire_name(&self) -> String {
        match self {
            ScoreMerge::Concat => "concat".into(),
            ScoreMerge::MeanStd => "mean-std".into(),
            ScoreMerge::SumToUnit => "sum-to-unit".into(),
            // f32 Display prints the shortest round-tripping decimal, so
            // the parsed alpha is bit-identical on the other side.
            ScoreMerge::Weighted(alpha) => format!("weighted:{alpha}"),
        }
    }

    /// Parse [`ScoreMerge::wire_name`] output.
    pub fn parse_wire(s: &str) -> Result<ScoreMerge, String> {
        match s {
            "concat" => Ok(ScoreMerge::Concat),
            "mean-std" => Ok(ScoreMerge::MeanStd),
            "sum-to-unit" => Ok(ScoreMerge::SumToUnit),
            _ => match s.strip_prefix("weighted:") {
                Some(alpha) => alpha
                    .parse::<f32>()
                    .map(ScoreMerge::Weighted)
                    .map_err(|e| format!("bad weighted alpha {alpha:?}: {e}")),
                None => Err(format!("unknown merge rule {s:?}")),
            },
        }
    }

    /// Apply the rule to full-length concatenated channels, producing the
    /// final global combined score.
    ///
    /// # Panics
    /// Panics if a non-`Concat` rule is applied to scores missing a
    /// structural or contextual channel.
    pub fn apply(&self, mut scores: Scores) -> Scores {
        if let ScoreMerge::Concat = self {
            return scores;
        }
        let structural = scores
            .structural
            .as_deref()
            .expect("merge rule needs a structural channel");
        let contextual = scores
            .contextual
            .as_deref()
            .expect("merge rule needs a contextual channel");
        scores.combined = match self {
            ScoreMerge::Concat => unreachable!(),
            ScoreMerge::MeanStd => combine_mean_std(structural, contextual),
            ScoreMerge::SumToUnit => combine_sum_to_unit(structural, contextual),
            ScoreMerge::Weighted(alpha) => structural
                .iter()
                .zip(contextual)
                .map(|(&s, &c)| alpha * s + (1.0 - alpha) * c)
                .collect(),
        };
        scores
    }
}

/// How a detector's scores respond to a graph mutation — whether the
/// dirty frontier can be rescored in isolation, declared per detector via
/// [`OutlierDetector::delta_capability`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DeltaCapability {
    /// Per-node raw score channels are a pure function of the node's
    /// `hops`-hop neighbourhood. After a mutation, only the ball
    /// `B_hops(touched)` can change; rescoring the exact closure subgraph
    /// around that frontier and re-applying `merge` over the patched
    /// full-length channels is byte-identical to a full rescore.
    /// `merge` is [`ScoreMerge::Concat`] when the combined score itself is
    /// local; a non-`Concat` rule means the channels are local but the
    /// combination is global (mean-std, sum-to-unit, weighted) and must be
    /// recomputed over the full-length channels after patching.
    Local {
        /// Receptive-field radius in hops.
        hops: usize,
        /// Global recombination applied over the patched channels.
        merge: ScoreMerge,
    },
    /// Scores depend on global state (global normalisation inside
    /// `score`, inference-time RNG streams keyed on node order): any
    /// mutation invalidates every score; rescore the whole graph.
    FullRescore,
    /// Transductive detector — scoring is refitting (Radar, AnomalyDAE);
    /// a mutation requires a full refit + rescore.
    Refit,
}

/// Raw score channels for one contiguous node range, plus the rule a
/// coordinator must apply after concatenating all ranges. Produced by
/// [`OutlierDetector::score_store_range`], consumed by
/// [`merge_range_scores`].
#[derive(Clone, Debug)]
pub struct RangeScores {
    /// Per-range channels, `hi - lo` rows each.
    pub scores: Scores,
    /// Global recombination rule; must agree across all ranges of a graph.
    pub merge: ScoreMerge,
}

/// Reassemble per-range score channels (ranges tile `[0, n)` in order)
/// into the global [`Scores`], applying the shared merge rule. This is the
/// coordinator half of sharded scoring; byte-identical to a single-process
/// `score_store` by construction.
///
/// # Panics
/// Panics if `parts` is empty, the merge rules disagree, or the
/// concatenated length is not `n`.
pub fn merge_range_scores(n: usize, parts: Vec<RangeScores>) -> Scores {
    let merge = parts.first().expect("at least one range").merge;
    let mut combined = Vec::with_capacity(n);
    let mut structural = Some(Vec::with_capacity(n));
    let mut contextual = Some(Vec::with_capacity(n));
    for part in parts {
        assert!(
            part.merge == merge,
            "shards disagree on the merge rule: {:?} vs {:?}",
            part.merge,
            merge
        );
        combined.extend_from_slice(&part.scores.combined);
        match (&mut structural, &part.scores.structural) {
            (Some(acc), Some(p)) => acc.extend_from_slice(p),
            _ => structural = None,
        }
        match (&mut contextual, &part.scores.contextual) {
            (Some(acc), Some(p)) => acc.extend_from_slice(p),
            _ => contextual = None,
        }
    }
    assert_eq!(combined.len(), n, "score ranges must tile every node once");
    merge.apply(Scores {
        combined,
        structural,
        contextual,
    })
}

/// The bit-identical small-graph fast path of the store-backed detector
/// methods: below the sampling threshold, borrow the in-memory graph behind
/// the store (zero-copy for [`AttributedGraph`] backends) or materialise it
/// once, so the detector's ordinary full-graph code runs unchanged. Above
/// the threshold returns `None` — callers must sample.
pub fn full_graph_view<'a>(
    store: &'a dyn GraphStore,
    cfg: &SamplingConfig,
) -> Option<Cow<'a, AttributedGraph>> {
    if !cfg.below_threshold(store) {
        return None;
    }
    Some(match store.as_full_graph() {
        Some(g) => Cow::Borrowed(g),
        None => Cow::Owned(store.materialize()),
    })
}

/// Concatenate per-batch seed scores (batches tile the node set in order)
/// into one full-length [`Scores`]. Components survive only when every
/// batch produced them.
pub fn assemble_batch_scores(n: usize, parts: Vec<(usize, Scores)>) -> Scores {
    let mut combined = Vec::with_capacity(n);
    let mut structural = Some(Vec::with_capacity(n));
    let mut contextual = Some(Vec::with_capacity(n));
    for (num_seeds, s) in parts {
        combined.extend_from_slice(&s.combined[..num_seeds]);
        match (&mut structural, &s.structural) {
            (Some(acc), Some(part)) => acc.extend_from_slice(&part[..num_seeds]),
            _ => structural = None,
        }
        match (&mut contextual, &s.contextual) {
            (Some(acc), Some(part)) => acc.extend_from_slice(&part[..num_seeds]),
            _ => contextual = None,
        }
    }
    assert_eq!(combined.len(), n, "score batches must tile every node once");
    Scores {
        combined,
        structural,
        contextual,
    }
}

/// Store-backed scoring for *transductive* detectors (Radar, AnomalyDAE):
/// their `score` asserts the graph is the one they were fitted on, so the
/// generic batched path (score a subgraph with the globally-fitted model)
/// cannot apply. Below the threshold this delegates to the ordinary
/// transductive `score`; above it, each sampled batch neighbourhood is
/// treated as its own small transductive problem — a fresh clone of the
/// detector is fitted and scored on the batch subgraph and only the seed
/// rows are kept. Batches run through [`score_sampled_batches`], so the
/// refit path parallelises and prefetches like the generic one.
pub fn refit_score_store<D: OutlierDetector + Clone>(
    det: &D,
    store: &dyn GraphStore,
    cfg: &SamplingConfig,
) -> Scores {
    if let Some(g) = full_graph_view(store, cfg) {
        return det.score(&g);
    }
    let parts = score_sampled_batches(store, cfg, &|batch| {
        let mut local = det.clone();
        local.fit_score(&batch.graph)
    });
    assemble_batch_scores(store.num_nodes(), parts)
}

/// Range variant of [`refit_score_store`] for the transductive detectors:
/// each batch in the range is refitted and scored independently (exactly
/// the per-batch work of the full pass), so the concatenation over ranges
/// is byte-identical to single-process output.
pub fn refit_score_store_range<D: OutlierDetector + Clone>(
    det: &D,
    store: &dyn GraphStore,
    cfg: &SamplingConfig,
    lo: u32,
    hi: u32,
) -> RangeScores {
    if let Some(g) = full_graph_view(store, cfg) {
        return RangeScores {
            scores: det.score(&g).slice_range(lo as usize, hi as usize),
            merge: ScoreMerge::Concat,
        };
    }
    let batches = range_score_batches(store.num_nodes(), cfg, lo, hi);
    let parts = score_sampled_batch_range(store, cfg, batches, &|batch| {
        let mut local = det.clone();
        local.fit_score(&batch.graph)
    });
    RangeScores {
        scores: assemble_batch_scores((hi - lo) as usize, parts),
        merge: ScoreMerge::Concat,
    }
}

/// The score-batch indices that tile exactly the node range `[lo, hi)`.
///
/// # Panics
/// Panics unless the range lies in `[0, n]` and is aligned to whole score
/// batches: `lo` on a batch boundary and `hi` on a boundary or at `n`.
/// Sharded partitions are built batch-aligned so every shard scores whole
/// global batches — the precondition for byte-identical reassembly.
pub fn range_score_batches(
    n: usize,
    cfg: &SamplingConfig,
    lo: u32,
    hi: u32,
) -> std::ops::Range<usize> {
    let (lo, hi) = (lo as usize, hi as usize);
    assert!(
        lo <= hi && hi <= n,
        "bad score range [{lo}, {hi}) for n={n}"
    );
    if lo == hi {
        // Empty ranges (trailing shards of a small graph) score nothing.
        return 0..0;
    }
    assert_eq!(
        lo % cfg.batch_size,
        0,
        "range start {lo} not aligned to batch size {}",
        cfg.batch_size
    );
    assert!(
        hi % cfg.batch_size == 0 || hi == n,
        "range end {hi} not aligned to batch size {} (n={n})",
        cfg.batch_size
    );
    lo / cfg.batch_size..hi.div_ceil(cfg.batch_size)
}

/// Sets a stop flag when dropped, so the prefetcher thread is released
/// even when a scoring batch panics mid-flight.
struct StopGuard<'a>(&'a AtomicBool);

impl Drop for StopGuard<'_> {
    fn drop(&mut self) {
        self.0.store(true, Ordering::Relaxed);
    }
}

/// Score every sampled batch with `score_one`, returning
/// `(num_seeds, seed-truncated scores)` in batch order.
///
/// When the store supports shared access ([`GraphStore::as_shared`]) and
/// the config asks for concurrency (`score_threads() > 1` or `prefetch`),
/// batches are dispatched across the tensor worker pool, each writing its
/// pre-assigned slot; otherwise the plain sequential loop runs. Results
/// are bit-identical either way and at every thread count: batch `b`'s
/// sampled subgraph depends only on `(cfg.seed, b)`, never on which
/// thread ran it or in what order.
///
/// With `cfg.prefetch`, a background thread walks one batch wave ahead of
/// compute, paging the next batches' edge/attribute blocks into the
/// store's shared cache so compute threads find them resident.
pub fn score_sampled_batches(
    store: &dyn GraphStore,
    cfg: &SamplingConfig,
    score_one: &(dyn Fn(&SampledBatch) -> Scores + Sync),
) -> Vec<(usize, Scores)> {
    let num_batches = NeighborSampler::new(store, *cfg).num_score_batches();
    score_sampled_batch_range(store, cfg, 0..num_batches, score_one)
}

/// [`score_sampled_batches`] restricted to a contiguous batch-index range —
/// the per-shard building block of distributed scoring. Batch `b` still
/// means *global* batch `b` (seeds `[b * batch_size, ..)`, RNG stream keyed
/// on `(cfg.seed, b)`), so a shard scoring its slice of batches produces
/// bit-identical results to the same batches of a full single-process pass.
pub fn score_sampled_batch_range(
    store: &dyn GraphStore,
    cfg: &SamplingConfig,
    batches: std::ops::Range<usize>,
    score_one: &(dyn Fn(&SampledBatch) -> Scores + Sync),
) -> Vec<(usize, Scores)> {
    let threads = cfg.score_threads();
    if threads > 1 || cfg.prefetch {
        if let Some(shared) = store.as_shared() {
            return score_batches_parallel(shared, cfg, batches, threads, score_one);
        }
    }
    let sampler = NeighborSampler::new(store, *cfg);
    batches
        .map(|b| {
            let batch = sampler.score_batch(b);
            let mut s = score_one(&batch);
            s.truncate_to(batch.num_seeds);
            (batch.num_seeds, s)
        })
        .collect()
}

fn score_batches_parallel(
    store: &(dyn GraphStore + Sync),
    cfg: &SamplingConfig,
    batches: std::ops::Range<usize>,
    threads: usize,
    score_one: &(dyn Fn(&SampledBatch) -> Scores + Sync),
) -> Vec<(usize, Scores)> {
    let first = batches.start;
    let num_batches = batches.len();
    let slots: Vec<OnceLock<(usize, Scores)>> = (0..num_batches).map(|_| OnceLock::new()).collect();
    let done = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let n = store.num_nodes();
    // The prefetch stage only pays off when a spare hardware thread can
    // absorb the pread time; on a single-hardware-thread host every cycle
    // it spends (it is almost pure system time in `pread`) is stolen from
    // compute, so the stage is skipped. Scores are bit-identical either
    // way — prefetching only changes which thread faults a block in.
    let hw_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    std::thread::scope(|scope| {
        let _stop_on_unwind = StopGuard(&stop);
        let prefetcher = (cfg.prefetch && hw_threads > 1).then(|| {
            scope.spawn(|| {
                for rel in 1..num_batches {
                    // Pace the I/O: stay at most one batch wave ahead of
                    // compute so prefetched blocks are still resident when
                    // their batch runs.
                    while rel > done.load(Ordering::Relaxed) + threads + 1 {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        // Coarse poll: pacing only needs batch-scale
                        // granularity, and each wakeup preempts a compute
                        // thread when cores are scarce.
                        std::thread::sleep(std::time::Duration::from_micros(500));
                    }
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    let (lo, hi) = cfg.batch_seed_range(n, first + rel);
                    store.prefetch_nodes(lo, hi);
                }
            })
        });
        vgod_tensor::threading::run_indexed(num_batches, threads, &|rel| {
            let b = first + rel;
            let sampler = NeighborSampler::new(store, *cfg);
            let batch = sampler.score_batch(b);
            let mut s = score_one(&batch);
            s.truncate_to(batch.num_seeds);
            let set = slots[rel].set((batch.num_seeds, s));
            assert!(set.is_ok(), "batch {b} dispatched twice");
            done.fetch_add(1, Ordering::Relaxed);
        });
        stop.store(true, Ordering::Relaxed);
        if let Some(p) = prefetcher {
            p.join().expect("prefetcher thread panicked");
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("missing batch result"))
        .collect()
}

/// An unsupervised node outlier detector (Definition 2): fit on a graph
/// without labels, then score every node.
///
/// The `fit`/`score` split supports both the transductive UNOD protocol
/// (fit and score the same graph) and the inductive protocol of
/// Appendix B (fit on one graph, score another with the same attribute
/// schema).
///
/// `Send + Sync` is a supertrait so sampled score batches can run on the
/// worker pool (every detector is plain data between calls; fitted state
/// is only mutated through `&mut self`).
pub trait OutlierDetector: Send + Sync {
    /// Short display name used in result tables.
    fn name(&self) -> &'static str;

    /// Train on `g` (no outlier labels available).
    fn fit(&mut self, g: &AttributedGraph);

    /// Score every node of `g` (higher = more likely outlier).
    ///
    /// For trainable detectors this requires `fit` to have been called;
    /// implementations panic otherwise.
    fn score(&self, g: &AttributedGraph) -> Scores;

    /// Convenience: `fit` then `score` on the same graph (transductive).
    fn fit_score(&mut self, g: &AttributedGraph) -> Scores {
        self.fit(g);
        self.score(g)
    }

    /// Combined scores for a node subset (the online-serving path).
    ///
    /// The default runs the full [`OutlierDetector::score`] pass and selects
    /// the requested rows, which keeps subset responses bit-identical to
    /// offline full-graph scoring; detectors with a cheaper per-node path
    /// may override it as long as they preserve that identity.
    ///
    /// # Panics
    /// Panics like [`OutlierDetector::score`], or if a node id is out of
    /// range for `g`.
    fn score_nodes(&self, g: &AttributedGraph, nodes: &[u32]) -> Vec<f32> {
        self.score(g).select(nodes)
    }

    /// Train against any [`GraphStore`] backend.
    ///
    /// At or below `cfg.full_graph_threshold` nodes this is *exactly*
    /// [`OutlierDetector::fit`] on the (borrowed or materialised) full
    /// graph — bit-identical to the pre-store code path. Above it, the
    /// default trains on one neighbour-sampled training subgraph
    /// (`cfg.train_seeds` seeds plus their sampled k-hop neighbourhood);
    /// detectors with their own mini-batch machinery override this.
    fn fit_store(&mut self, store: &dyn GraphStore, cfg: &SamplingConfig) {
        match full_graph_view(store, cfg) {
            Some(g) => self.fit(&g),
            None => {
                let sub = NeighborSampler::new(store, *cfg).training_subgraph();
                self.fit(&sub.graph);
            }
        }
    }

    /// Score every node against any [`GraphStore`] backend.
    ///
    /// Below the threshold this is *exactly* [`OutlierDetector::score`] on
    /// the full graph. Above it, nodes are scored in contiguous sampled
    /// batches — each batch is the induced subgraph around
    /// `cfg.batch_size` seed nodes, scored with the detector's ordinary
    /// path, keeping only the seed rows. Batches run through
    /// [`score_sampled_batches`], which parallelises them across the
    /// worker pool (and overlaps I/O) when `cfg` asks for it, without
    /// changing a single score bit. Scores that depend on global
    /// normalisation are approximate under batching; detectors needing
    /// exact global combination (VGOD, DegNorm) override this to combine
    /// across the concatenated components instead.
    fn score_store(&self, store: &dyn GraphStore, cfg: &SamplingConfig) -> Scores {
        if let Some(g) = full_graph_view(store, cfg) {
            return self.score(&g);
        }
        let parts = score_sampled_batches(store, cfg, &|batch| self.score(&batch.graph));
        assemble_batch_scores(store.num_nodes(), parts)
    }

    /// Convenience: [`OutlierDetector::fit_store`] then
    /// [`OutlierDetector::score_store`] on the same store.
    fn fit_score_store(&mut self, store: &dyn GraphStore, cfg: &SamplingConfig) -> Scores {
        self.fit_store(store, cfg);
        self.score_store(store, cfg)
    }

    /// Score only the contiguous node range `[lo, hi)` of the store — the
    /// per-shard half of distributed scoring. Returns the range's raw
    /// score channels plus the [`ScoreMerge`] rule a coordinator applies
    /// after concatenating all ranges in order; the merged result is
    /// byte-identical to [`OutlierDetector::score_store`] on the whole
    /// store.
    ///
    /// Below the sampling threshold the default runs the ordinary
    /// full-graph pass and returns the requested rows. Above it, the range
    /// must be batch-aligned (see [`range_score_batches`]) and the default
    /// scores exactly the global sampled batches covering the range.
    /// Detectors whose `score_store` globally recombines components
    /// (VGOD, DegNorm) override this to emit raw components with the
    /// matching non-`Concat` merge rule; streaming-exact detectors
    /// override it to score just the range.
    fn score_store_range(
        &self,
        store: &dyn GraphStore,
        cfg: &SamplingConfig,
        lo: u32,
        hi: u32,
    ) -> RangeScores {
        if let Some(g) = full_graph_view(store, cfg) {
            return RangeScores {
                scores: self.score(&g).slice_range(lo as usize, hi as usize),
                merge: ScoreMerge::Concat,
            };
        }
        let batches = range_score_batches(store.num_nodes(), cfg, lo, hi);
        let parts =
            score_sampled_batch_range(store, cfg, batches, &|batch| self.score(&batch.graph));
        RangeScores {
            scores: assemble_batch_scores((hi - lo) as usize, parts),
            merge: ScoreMerge::Concat,
        }
    }

    /// How this detector's scores react to a local graph mutation — the
    /// streaming engine's dispatch flag (see [`crate::delta`]).
    ///
    /// The default is the safe answer: scores may depend on the whole
    /// graph (global normalisation, inference-time randomness keyed on
    /// node indices), so a mutation invalidates every score and only a
    /// full rescore is exact. Detectors whose per-node score is a pure
    /// function of a bounded neighbourhood override this with
    /// [`DeltaCapability::Local`]; transductive detectors whose scoring
    /// *is* refitting declare [`DeltaCapability::Refit`].
    fn delta_capability(&self) -> DeltaCapability {
        DeltaCapability::FullRescore
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgod_tensor::Matrix;

    struct DegreeToy;

    impl OutlierDetector for DegreeToy {
        fn name(&self) -> &'static str {
            "toy"
        }

        fn fit(&mut self, _g: &AttributedGraph) {}

        fn score(&self, g: &AttributedGraph) -> Scores {
            Scores::combined_only(
                (0..g.num_nodes() as u32)
                    .map(|u| g.degree(u) as f32)
                    .collect(),
            )
        }
    }

    #[test]
    fn trait_object_usable() {
        let mut g = AttributedGraph::new(Matrix::zeros(3, 1));
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        let mut det: Box<dyn OutlierDetector> = Box::new(DegreeToy);
        let scores = det.fit_score(&g);
        assert_eq!(scores.combined, vec![2.0, 1.0, 1.0]);
        assert_eq!(scores.structural_or_combined(), &[2.0, 1.0, 1.0]);
    }

    #[test]
    fn subset_scoring_matches_full_pass() {
        let mut g = AttributedGraph::new(Matrix::zeros(4, 1));
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        let det = DegreeToy;
        let full = det.score(&g);
        assert_eq!(det.score_nodes(&g, &[3, 0]), vec![1.0, 3.0]);
        assert_eq!(full.select(&[3, 0]), det.score_nodes(&g, &[3, 0]));
        assert!(det.score_nodes(&g, &[]).is_empty());
    }

    #[test]
    fn from_components_combines_with_mean_std() {
        let s = Scores::from_components(vec![1.0, 0.0], vec![0.0, 1.0]);
        // Symmetric inputs ⇒ symmetric combination.
        assert!((s.combined[0] - s.combined[1]).abs() < 1e-6);
        assert!(s.structural.is_some() && s.contextual.is_some());
    }
}
