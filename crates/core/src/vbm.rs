//! The Variance-Based Model (§V-A).

use vgod_autograd::{ParamStore, Tape};
use vgod_gnn::{neighbor_variance_matrix, neighbor_variance_scores, GraphContext};
use vgod_graph::{seeded_rng, AttributedGraph};
use vgod_nn::{Linear, Trainer};
use vgod_tensor::Matrix;

use crate::VbmConfig;

/// A per-epoch training snapshot (used by the Fig. 8 experiment).
#[derive(Clone, Debug)]
pub struct VbmEpochSnapshot {
    /// Zero-based epoch index (0 = before any update).
    pub epoch: usize,
    /// Contrastive loss value at this epoch (`loss⁺ − loss⁻`).
    pub loss: f32,
    /// Structural outlier scores at this epoch.
    pub scores: Vec<f32>,
}

/// The Variance-Based Model: detects structural outliers by the variance of
/// their neighbours' learned low-dimensional representations.
///
/// *Forward* (Eq. 5–9): `h_i = normalize(x_i W + b)`; `o_i^str = ‖Var_{j ∈
/// N_i}(h_j)‖₁`.
///
/// *Training* (Eq. 10–12): each epoch samples a negative network `G⁻`
/// (Definition 4) and minimises `E[‖Var_N(h)‖₁] − E[‖Var_{N⁻}(h)‖₁]` —
/// related neighbourhoods should agree, unrelated ones should disagree.
#[derive(Clone, Debug)]
pub struct Vbm {
    cfg: VbmConfig,
    state: Option<VbmState>,
}

#[derive(Clone, Debug)]
struct VbmState {
    store: ParamStore,
    linear: Linear,
    in_dim: usize,
}

impl Vbm {
    /// An untrained model.
    pub fn new(cfg: VbmConfig) -> Self {
        Self { cfg, state: None }
    }

    /// The configuration.
    pub fn config(&self) -> &VbmConfig {
        &self.cfg
    }

    /// Whether `fit` has been called.
    pub fn is_fitted(&self) -> bool {
        self.state.is_some()
    }

    /// Train on `g` (unsupervised). See [`Vbm::fit_with_callback`].
    pub fn fit(&mut self, g: &AttributedGraph) {
        self.fit_with_callback(g, |_| {});
    }

    /// Train on `g`, invoking `callback` with a snapshot after every epoch
    /// (epoch 0 reports the untrained model). Used to reproduce the AUC
    /// trend curves of Fig. 8.
    pub fn fit_with_callback(
        &mut self,
        g: &AttributedGraph,
        mut callback: impl FnMut(&VbmEpochSnapshot),
    ) {
        let mut rng = seeded_rng(self.cfg.seed);
        let mut store = ParamStore::new();
        let linear = Linear::new(
            &mut store,
            g.num_attrs(),
            self.cfg.hidden_dim,
            true,
            &mut rng,
        );
        let self_loops = self.cfg.self_loops;
        let ctx = GraphContext::of(g);
        let mean_pos = ctx.mean_adjacency(self_loops).clone();
        let x = g.attrs().clone();

        // Epoch 0 snapshot (untrained).
        callback(&VbmEpochSnapshot {
            epoch: 0,
            loss: f32::NAN,
            scores: scores_for(&linear, &store, g, self_loops),
        });

        Trainer::new(self.cfg.epochs, self.cfg.lr).run(
            &mut store,
            |tape, _, store| {
                let mean_neg = std::rc::Rc::new(g.negative_mean_adjacency(self_loops, &mut rng));
                let xv = tape.constant(x.clone());
                let h = linear.forward(tape, store, &xv).l2_normalize_rows();
                let loss_pos = neighbor_variance_scores(&h, &mean_pos).mean_all();
                let loss_neg = neighbor_variance_scores(&h, &mean_neg).mean_all();
                loss_pos.sub(&loss_neg)
            },
            |epoch, loss, store| {
                callback(&VbmEpochSnapshot {
                    epoch,
                    loss,
                    scores: scores_for(&linear, store, g, self_loops),
                });
            },
        );
        self.state = Some(VbmState {
            store,
            linear,
            in_dim: g.num_attrs(),
        });
    }

    /// Structural outlier scores `o^str` for every node of `g`
    /// (transductive when `g` is the training graph, inductive otherwise —
    /// only the attribute dimension must match).
    ///
    /// # Panics
    /// Panics if the model is untrained or `g`'s attribute dimension
    /// differs from the training graph's.
    pub fn scores(&self, g: &AttributedGraph) -> Vec<f32> {
        let state = self.state.as_ref().expect("Vbm::scores called before fit");
        assert_eq!(
            g.num_attrs(),
            state.in_dim,
            "attribute dimension mismatch: model was trained on {}-dimensional attributes",
            state.in_dim
        );
        scores_with(state, g, self.cfg.self_loops)
    }

    /// Install trained state (used by the mini-batch trainer, which owns
    /// its own optimisation loop).
    pub(crate) fn install_state(&mut self, store: ParamStore, linear: Linear, in_dim: usize) {
        self.state = Some(VbmState {
            store,
            linear,
            in_dim,
        });
    }

    /// Write a trained model as a plain-text checkpoint.
    ///
    /// # Panics
    /// Panics if the model is untrained.
    pub fn save(&self, out: &mut impl std::io::Write) -> std::io::Result<()> {
        let state = self.state.as_ref().expect("Vbm::save called before fit");
        writeln!(out, "# vgod-vbm v1")?;
        writeln!(
            out,
            "{}",
            crate::persist::header_line(&[
                ("hidden_dim", self.cfg.hidden_dim.to_string()),
                ("epochs", self.cfg.epochs.to_string()),
                ("lr", self.cfg.lr.to_string()),
                ("self_loops", self.cfg.self_loops.to_string()),
                ("seed", self.cfg.seed.to_string()),
                ("in_dim", state.in_dim.to_string()),
            ])
        )?;
        state.store.write_text(out)
    }

    /// Read a checkpoint written by [`Vbm::save`], returning a model ready
    /// to score graphs (no retraining).
    pub fn load(input: &mut impl std::io::BufRead) -> Result<Vbm, String> {
        let mut magic = String::new();
        input.read_line(&mut magic).map_err(|e| e.to_string())?;
        if magic.trim() != "# vgod-vbm v1" {
            return Err(format!("not a vgod-vbm checkpoint: {magic:?}"));
        }
        let mut header = String::new();
        input.read_line(&mut header).map_err(|e| e.to_string())?;
        let map = crate::persist::parse_header(header.trim())?;
        let cfg = VbmConfig {
            hidden_dim: crate::persist::header_get(&map, "hidden_dim")?,
            epochs: crate::persist::header_get(&map, "epochs")?,
            lr: crate::persist::header_get(&map, "lr")?,
            self_loops: crate::persist::header_get(&map, "self_loops")?,
            seed: crate::persist::header_get(&map, "seed")?,
        };
        let in_dim: usize = crate::persist::header_get(&map, "in_dim")?;
        let loaded = ParamStore::read_text(input)?;
        // Replay the deterministic constructor to rebuild the architecture
        // (and parameter insertion order), then install the saved values.
        let mut rng = seeded_rng(cfg.seed);
        let mut store = ParamStore::new();
        let linear = Linear::new(&mut store, in_dim, cfg.hidden_dim, true, &mut rng);
        crate::persist::copy_store_values(&mut store, &loaded)?;
        let mut vbm = Vbm::new(cfg);
        vbm.install_state(store, linear, in_dim);
        Ok(vbm)
    }

    /// The learned node embeddings `H = normalize(XW + b)` (Eq. 6).
    pub fn embeddings(&self, g: &AttributedGraph) -> Matrix {
        let state = self
            .state
            .as_ref()
            .expect("Vbm::embeddings called before fit");
        embed(state, g)
    }
}

fn embed(state: &VbmState, g: &AttributedGraph) -> Matrix {
    embed_with(&state.linear, &state.store, g)
}

fn embed_with(linear: &Linear, store: &ParamStore, g: &AttributedGraph) -> Matrix {
    let tape = Tape::new();
    let xv = tape.constant(g.attrs().clone());
    linear
        .forward(&tape, store, &xv)
        .l2_normalize_rows()
        .value()
}

fn scores_with(state: &VbmState, g: &AttributedGraph, self_loops: bool) -> Vec<f32> {
    scores_for(&state.linear, &state.store, g, self_loops)
}

fn scores_for(
    linear: &Linear,
    store: &ParamStore,
    g: &AttributedGraph,
    self_loops: bool,
) -> Vec<f32> {
    let h = embed_with(linear, store, g);
    let ctx = GraphContext::of(g);
    let var = neighbor_variance_matrix(&h, ctx.mean_adjacency(self_loops));
    var.row_sums().into_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgod_eval::auc;
    use vgod_graph::{community_graph, gaussian_mixture_attributes, CommunityGraphConfig};
    use vgod_inject::{inject_structural, GroundTruth, StructuralParams};

    fn test_graph(seed: u64) -> AttributedGraph {
        let mut rng = seeded_rng(seed);
        let mut g = community_graph(
            &CommunityGraphConfig::homogeneous(240, 4, 5.0, 0.92),
            &mut rng,
        );
        let x = gaussian_mixture_attributes(g.labels().unwrap(), 16, 4.0, 0.6, &mut rng);
        g.set_attrs(x);
        g
    }

    fn fast_cfg(self_loops: bool) -> VbmConfig {
        VbmConfig {
            hidden_dim: 16,
            epochs: 8,
            lr: 0.01,
            self_loops,
            seed: 7,
        }
    }

    #[test]
    fn detects_injected_cliques() {
        // Average over a few seeds: a single tiny graph has high variance.
        let mut aucs = Vec::new();
        for seed in 0..3u64 {
            let mut rng = seeded_rng(seed);
            let mut g = test_graph(seed);
            let mut truth = GroundTruth::new(g.num_nodes());
            inject_structural(
                &mut g,
                &mut truth,
                &StructuralParams {
                    num_cliques: 2,
                    clique_size: 6,
                },
                &mut rng,
            );
            let mut vbm = Vbm::new(fast_cfg(false));
            vbm.fit(&g);
            aucs.push(auc(&vbm.scores(&g), &truth.outlier_mask()));
        }
        let mean = aucs.iter().sum::<f32>() / aucs.len() as f32;
        assert!(
            mean > 0.85,
            "VBM mean AUC on injected cliques = {mean} ({aucs:?})"
        );
    }

    #[test]
    fn untrained_scores_panic() {
        let g = test_graph(2);
        let vbm = Vbm::new(fast_cfg(false));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| vbm.scores(&g)));
        assert!(result.is_err());
    }

    #[test]
    fn callback_sees_every_epoch() {
        let g = test_graph(3);
        let mut vbm = Vbm::new(fast_cfg(true));
        let mut epochs = Vec::new();
        vbm.fit_with_callback(&g, |snap| {
            epochs.push(snap.epoch);
            assert_eq!(snap.scores.len(), g.num_nodes());
        });
        assert_eq!(epochs, (0..=8).collect::<Vec<_>>());
        assert!(vbm.is_fitted());
    }

    #[test]
    fn training_reduces_contrastive_loss() {
        let g = test_graph(4);
        let mut vbm = Vbm::new(VbmConfig {
            epochs: 12,
            ..fast_cfg(false)
        });
        let mut losses = Vec::new();
        vbm.fit_with_callback(&g, |snap| {
            if snap.epoch > 0 {
                losses.push(snap.loss);
            }
        });
        let first = losses.first().copied().unwrap();
        let last = losses.last().copied().unwrap();
        assert!(last < first, "loss did not decrease: {first} → {last}");
    }

    #[test]
    fn inductive_scoring_works_on_new_graph() {
        let g1 = test_graph(5);
        let g2 = test_graph(6);
        let mut vbm = Vbm::new(fast_cfg(false));
        vbm.fit(&g1);
        let scores = vbm.scores(&g2);
        assert_eq!(scores.len(), g2.num_nodes());
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    #[should_panic(expected = "attribute dimension mismatch")]
    fn dimension_mismatch_panics() {
        let g1 = test_graph(7);
        let mut vbm = Vbm::new(fast_cfg(false));
        vbm.fit(&g1);
        let g2 = AttributedGraph::new(Matrix::zeros(10, 3));
        let _ = vbm.scores(&g2);
    }

    #[test]
    fn checkpoint_roundtrip_reproduces_scores() {
        let g = test_graph(9);
        let mut vbm = Vbm::new(fast_cfg(true));
        vbm.fit(&g);
        let original = vbm.scores(&g);

        let mut buf = Vec::new();
        vbm.save(&mut buf).unwrap();
        let restored = Vbm::load(&mut buf.as_slice()).unwrap();
        let reloaded = restored.scores(&g);
        for (a, b) in original.iter().zip(&reloaded) {
            assert_eq!(a, b, "restored model must score identically");
        }
        assert_eq!(restored.config().hidden_dim, 16);
        assert!(restored.config().self_loops);
    }

    #[test]
    fn load_rejects_foreign_data() {
        assert!(Vbm::load(&mut b"garbage".as_slice()).is_err());
        assert!(Vbm::load(&mut b"# vgod-vbm v1\nhidden_dim nope\n".as_slice()).is_err());
    }

    #[test]
    fn embeddings_are_unit_rows() {
        let g = test_graph(8);
        let mut vbm = Vbm::new(fast_cfg(false));
        vbm.fit(&g);
        let h = vbm.embeddings(&g);
        assert_eq!(h.shape(), (g.num_nodes(), 16));
        for r in 0..h.rows() {
            let n: f32 = h.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-3, "row {r} norm {n}");
        }
    }
}
