//! Model persistence (plain-text checkpoints).
//!
//! Checkpoints are a `# vgod-<kind> v<N>` magic line, a header line of
//! `key value` pairs, and the parameter store in
//! [`vgod_autograd::ParamStore::write_text`] format. Reconstruction replays
//! the model's deterministic constructor (which fixes the parameter
//! insertion order) and then overwrites every value with the checkpoint's.
//!
//! The helpers live in [`vgod_autograd::persist`] so every detector crate
//! (this one and `vgod-baselines`) shares one header grammar; this module
//! re-exports them as the canonical entry point for checkpoint tooling such
//! as the `vgod-serve` model registry.

pub use vgod_autograd::persist::{
    copy_store_values, expect_magic, header_get, header_line, parse_header, read_header,
};
