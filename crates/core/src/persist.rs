//! Shared plumbing for model persistence (plain-text checkpoints).
//!
//! Checkpoints are a header line of `key value` pairs followed by the
//! parameter store in [`vgod_autograd::ParamStore::write_text`] format.
//! Reconstruction replays the model's deterministic constructor (which
//! fixes the parameter insertion order) and then overwrites every value
//! with the checkpoint's.

use std::collections::BTreeMap;

/// Serialise `key value` pairs on one line.
pub(crate) fn header_line(pairs: &[(&str, String)]) -> String {
    pairs
        .iter()
        .map(|(k, v)| format!("{k} {v}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Parse a header line into a key → value map.
pub(crate) fn parse_header(line: &str) -> Result<BTreeMap<String, String>, String> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    if !tokens.len().is_multiple_of(2) {
        return Err(format!("malformed header: {line:?}"));
    }
    Ok(tokens
        .chunks(2)
        .map(|pair| (pair[0].to_string(), pair[1].to_string()))
        .collect())
}

/// Typed lookup in a parsed header.
pub(crate) fn header_get<T: std::str::FromStr>(
    map: &BTreeMap<String, String>,
    key: &str,
) -> Result<T, String> {
    map.get(key)
        .ok_or_else(|| format!("missing header field {key:?}"))?
        .parse()
        .map_err(|_| format!("bad header field {key:?}"))
}

/// Copy every parameter value from `src` into `dst`, validating that both
/// stores have identical layouts.
pub(crate) fn copy_store_values(
    dst: &mut vgod_autograd::ParamStore,
    src: &vgod_autograd::ParamStore,
) -> Result<(), String> {
    if dst.len() != src.len() {
        return Err(format!(
            "checkpoint has {} parameters, model expects {}",
            src.len(),
            dst.len()
        ));
    }
    let shapes: Vec<_> = src.iter().map(|(_, p)| p.value.clone()).collect();
    for ((id, p), value) in dst.iter_mut().zip(shapes) {
        if p.value.shape() != value.shape() {
            return Err(format!(
                "checkpoint parameter {id:?} has shape {:?}, model expects {:?}",
                value.shape(),
                p.value.shape()
            ));
        }
        p.value = value;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgod_tensor::Matrix;

    #[test]
    fn header_roundtrip() {
        let line = header_line(&[("hidden", "64".into()), ("lr", "0.005".into())]);
        let map = parse_header(&line).unwrap();
        assert_eq!(header_get::<usize>(&map, "hidden").unwrap(), 64);
        assert_eq!(header_get::<f32>(&map, "lr").unwrap(), 0.005);
        assert!(header_get::<usize>(&map, "missing").is_err());
        assert!(parse_header("three tokens here").is_err());
    }

    #[test]
    fn copy_validates_layout() {
        let mut a = vgod_autograd::ParamStore::new();
        a.insert(Matrix::zeros(2, 2));
        let mut b = vgod_autograd::ParamStore::new();
        b.insert(Matrix::filled(2, 2, 5.0));
        copy_store_values(&mut a, &b).unwrap();
        let (id, p) = a.iter().next().unwrap();
        assert_eq!(p.value.as_slice(), &[5.0; 4]);
        let _ = id;

        let mut c = vgod_autograd::ParamStore::new();
        c.insert(Matrix::zeros(1, 3));
        assert!(copy_store_values(&mut a, &c).is_err());
        let empty = vgod_autograd::ParamStore::new();
        assert!(copy_store_values(&mut a, &empty).is_err());
    }
}
