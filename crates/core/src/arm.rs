//! The Attribute Reconstruction Model (§V-B).

use vgod_autograd::{ParamStore, Tape, Var};
use vgod_gnn::{GnnLayer, GraphContext};
use vgod_graph::{seeded_rng, AttributedGraph};
use vgod_nn::{row_reconstruction_errors, Linear, Trainer};
use vgod_tensor::Matrix;

use crate::ArmConfig;

/// The Attribute Reconstruction Model: detects contextual outliers by their
/// attribute reconstruction error.
///
/// Architecture (Eq. 14–16): `Z⁰ = normalize(X W' + b')`, then `L` GNN
/// layers (any backbone), then `X̂ = Z^L Ŵ + b̂`; trained to minimise
/// `E[‖x̂ − x‖²]` (Eq. 17–18). Nodes whose attributes disagree with their
/// structural context reconstruct poorly.
#[derive(Clone, Debug)]
pub struct Arm {
    cfg: ArmConfig,
    state: Option<ArmState>,
}

#[derive(Clone, Debug)]
pub(crate) struct ArmState {
    store: ParamStore,
    input: Linear,
    gnns: Vec<GnnLayer>,
    output: Linear,
    in_dim: usize,
}

impl ArmState {
    /// Mutable access to the parameter store (mini-batch trainer).
    pub(crate) fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }
}

impl Arm {
    /// An untrained model.
    pub fn new(cfg: ArmConfig) -> Self {
        Self { cfg, state: None }
    }

    /// The configuration.
    pub fn config(&self) -> &ArmConfig {
        &self.cfg
    }

    /// Whether `fit` has been called.
    pub fn is_fitted(&self) -> bool {
        self.state.is_some()
    }

    fn preprocess(&self, g: &AttributedGraph) -> Matrix {
        if self.cfg.row_normalize {
            g.attrs().l2_normalize_rows(1e-6).0
        } else {
            g.attrs().clone()
        }
    }

    /// Build the architecture for input dimension `d` (deterministic given
    /// the config's seed — relied on by checkpoint loading).
    fn build_state(cfg: &ArmConfig, d: usize) -> ArmState {
        let mut rng = seeded_rng(cfg.seed);
        let mut store = ParamStore::new();
        let input = Linear::new(&mut store, d, cfg.hidden_dim, true, &mut rng);
        let gnns: Vec<GnnLayer> = (0..cfg.layers)
            .map(|_| {
                GnnLayer::new(
                    cfg.backbone.kind(),
                    &mut store,
                    cfg.hidden_dim,
                    cfg.hidden_dim,
                    &mut rng,
                )
            })
            .collect();
        let output = Linear::new(&mut store, cfg.hidden_dim, d, true, &mut rng);
        ArmState {
            store,
            input,
            gnns,
            output,
            in_dim: d,
        }
    }

    /// Train on `g` (unsupervised), optionally reporting the loss per epoch.
    pub fn fit_with_callback(&mut self, g: &AttributedGraph, mut callback: impl FnMut(usize, f32)) {
        let ArmState {
            mut store,
            input,
            gnns,
            output,
            in_dim,
        } = Self::build_state(&self.cfg, g.num_attrs());

        let ctx = GraphContext::of(g);
        let x = self.preprocess(g);
        Trainer::new(self.cfg.epochs, self.cfg.lr).run(
            &mut store,
            |tape, _, store| {
                let xv = tape.constant(x.clone());
                let xhat = forward_parts(&input, &gnns, &output, store, tape, &xv, &ctx);
                xhat.sub(&xv).square().mean_all()
            },
            |epoch, loss, _| callback(epoch, loss),
        );
        self.state = Some(ArmState {
            store,
            input,
            gnns,
            output,
            in_dim,
        });
    }

    /// Train on `g` (unsupervised).
    pub fn fit(&mut self, g: &AttributedGraph) {
        self.fit_with_callback(g, |_, _| {});
    }

    /// Crate-internal: build a fresh state (mini-batch trainer).
    pub(crate) fn build_state_for(cfg: &ArmConfig, d: usize) -> ArmState {
        Self::build_state(cfg, d)
    }

    /// Crate-internal: run the forward pass on an explicit state.
    pub(crate) fn forward_state(state: &ArmState, tape: &Tape, x: &Var, ctx: &GraphContext) -> Var {
        forward(state, tape, x, ctx)
    }

    /// Crate-internal: install externally trained state.
    pub(crate) fn install_state(&mut self, state: ArmState) {
        self.state = Some(state);
    }

    /// Write a trained model as a plain-text checkpoint.
    ///
    /// # Panics
    /// Panics if the model is untrained.
    pub fn save(&self, out: &mut impl std::io::Write) -> std::io::Result<()> {
        let state = self.state.as_ref().expect("Arm::save called before fit");
        writeln!(out, "# vgod-arm v1")?;
        writeln!(
            out,
            "{}",
            crate::persist::header_line(&[
                ("hidden_dim", self.cfg.hidden_dim.to_string()),
                ("layers", self.cfg.layers.to_string()),
                (
                    "backbone",
                    self.cfg.backbone.to_string().to_ascii_lowercase()
                ),
                ("epochs", self.cfg.epochs.to_string()),
                ("lr", self.cfg.lr.to_string()),
                ("row_normalize", self.cfg.row_normalize.to_string()),
                ("seed", self.cfg.seed.to_string()),
                ("in_dim", state.in_dim.to_string()),
            ])
        )?;
        state.store.write_text(out)
    }

    /// Read a checkpoint written by [`Arm::save`].
    pub fn load(input: &mut impl std::io::BufRead) -> Result<Arm, String> {
        let mut magic = String::new();
        input.read_line(&mut magic).map_err(|e| e.to_string())?;
        if magic.trim() != "# vgod-arm v1" {
            return Err(format!("not a vgod-arm checkpoint: {magic:?}"));
        }
        let mut header = String::new();
        input.read_line(&mut header).map_err(|e| e.to_string())?;
        let map = crate::persist::parse_header(header.trim())?;
        let cfg = ArmConfig {
            hidden_dim: crate::persist::header_get(&map, "hidden_dim")?,
            layers: crate::persist::header_get(&map, "layers")?,
            backbone: crate::persist::header_get(&map, "backbone")?,
            epochs: crate::persist::header_get(&map, "epochs")?,
            lr: crate::persist::header_get(&map, "lr")?,
            row_normalize: crate::persist::header_get(&map, "row_normalize")?,
            seed: crate::persist::header_get(&map, "seed")?,
        };
        let in_dim: usize = crate::persist::header_get(&map, "in_dim")?;
        let loaded = ParamStore::read_text(input)?;
        let mut state = Self::build_state(&cfg, in_dim);
        crate::persist::copy_store_values(&mut state.store, &loaded)?;
        let mut arm = Arm::new(cfg);
        arm.state = Some(state);
        Ok(arm)
    }

    /// Contextual outlier scores `o^attr = ‖x̂ − x‖²` for every node.
    ///
    /// # Panics
    /// Panics if the model is untrained or the attribute dimension differs
    /// from the training graph's.
    pub fn scores(&self, g: &AttributedGraph) -> Vec<f32> {
        let state = self.state.as_ref().expect("Arm::scores called before fit");
        assert_eq!(
            g.num_attrs(),
            state.in_dim,
            "attribute dimension mismatch: model was trained on {}-dimensional attributes",
            state.in_dim
        );
        let ctx = GraphContext::of(g);
        let x = self.preprocess(g);
        let tape = Tape::new();
        let xv = tape.constant(x.clone());
        let xhat = forward(state, &tape, &xv, &ctx).value();
        row_reconstruction_errors(&xhat, &x)
    }

    /// The reconstructed attribute matrix `X̂`.
    pub fn reconstruct(&self, g: &AttributedGraph) -> Matrix {
        let state = self
            .state
            .as_ref()
            .expect("Arm::reconstruct called before fit");
        let ctx = GraphContext::of(g);
        let tape = Tape::new();
        let xv = tape.constant(self.preprocess(g));
        forward(state, &tape, &xv, &ctx).value()
    }
}

fn forward(state: &ArmState, tape: &Tape, x: &Var, ctx: &GraphContext) -> Var {
    forward_parts(
        &state.input,
        &state.gnns,
        &state.output,
        &state.store,
        tape,
        x,
        ctx,
    )
}

fn forward_parts(
    input: &Linear,
    gnns: &[GnnLayer],
    output: &Linear,
    store: &ParamStore,
    tape: &Tape,
    x: &Var,
    ctx: &GraphContext,
) -> Var {
    // Feature transformation (Eq. 14).
    let mut z = input.forward(tape, store, x).l2_normalize_rows();
    // GNN layers (Eq. 15), ReLU between but not after the stack.
    for (i, gnn) in gnns.iter().enumerate() {
        z = gnn.forward(tape, store, &z, ctx);
        if i + 1 < gnns.len() {
            z = z.relu();
        }
    }
    // Feature retransformation (Eq. 16).
    output.forward(tape, store, &z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GnnBackbone;
    use vgod_eval::auc;
    use vgod_graph::{community_graph, gaussian_mixture_attributes, CommunityGraphConfig};
    use vgod_inject::{inject_contextual, ContextualParams, DistanceMetric, GroundTruth};

    fn test_graph(seed: u64) -> AttributedGraph {
        let mut rng = seeded_rng(seed);
        let mut g = community_graph(
            &CommunityGraphConfig::homogeneous(220, 4, 5.0, 0.92),
            &mut rng,
        );
        let x = gaussian_mixture_attributes(g.labels().unwrap(), 12, 4.0, 0.5, &mut rng);
        g.set_attrs(x);
        g
    }

    fn fast_cfg(backbone: GnnBackbone) -> ArmConfig {
        ArmConfig {
            hidden_dim: 16,
            layers: 2,
            backbone,
            epochs: 60,
            lr: 0.01,
            row_normalize: false,
            seed: 3,
        }
    }

    #[test]
    fn detects_contextual_outliers() {
        let mut rng = seeded_rng(21);
        let mut g = test_graph(1);
        let mut truth = GroundTruth::new(g.num_nodes());
        inject_contextual(
            &mut g,
            &mut truth,
            &ContextualParams {
                count: 12,
                candidates: 30,
                metric: DistanceMetric::Euclidean,
            },
            &mut rng,
        );
        let mut arm = Arm::new(fast_cfg(GnnBackbone::Gcn));
        arm.fit(&g);
        let scores = arm.scores(&g);
        let a = auc(&scores, &truth.outlier_mask());
        assert!(a > 0.8, "ARM AUC on contextual outliers = {a}");
    }

    #[test]
    fn loss_decreases_during_training() {
        let g = test_graph(2);
        let mut arm = Arm::new(fast_cfg(GnnBackbone::Gcn));
        let mut losses = Vec::new();
        arm.fit_with_callback(&g, |_, l| losses.push(l));
        assert_eq!(losses.len(), 60);
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.8),
            "loss barely moved: {} → {}",
            losses[0],
            losses.last().unwrap()
        );
    }

    #[test]
    fn all_backbones_train_and_score() {
        let g = test_graph(3);
        for backbone in [
            GnnBackbone::Gcn,
            GnnBackbone::Gat,
            GnnBackbone::Gin,
            GnnBackbone::Sage,
        ] {
            let mut arm = Arm::new(ArmConfig {
                epochs: 5,
                ..fast_cfg(backbone)
            });
            arm.fit(&g);
            let scores = arm.scores(&g);
            assert_eq!(scores.len(), g.num_nodes(), "{backbone:?}");
            assert!(
                scores.iter().all(|s| s.is_finite() && *s >= 0.0),
                "{backbone:?}"
            );
        }
    }

    #[test]
    fn row_normalize_bounds_reconstruction_targets() {
        let g = test_graph(4);
        let mut arm = Arm::new(ArmConfig {
            row_normalize: true,
            epochs: 5,
            ..fast_cfg(GnnBackbone::Gcn)
        });
        arm.fit(&g);
        // Errors against unit-norm rows are bounded by (‖x̂‖+1)².
        let scores = arm.scores(&g);
        assert!(scores.iter().all(|&s| (0.0..100.0).contains(&s)));
    }

    #[test]
    fn reconstruct_has_input_shape() {
        let g = test_graph(5);
        let mut arm = Arm::new(ArmConfig {
            epochs: 3,
            ..fast_cfg(GnnBackbone::Gcn)
        });
        arm.fit(&g);
        assert_eq!(arm.reconstruct(&g).shape(), (g.num_nodes(), g.num_attrs()));
    }

    #[test]
    fn checkpoint_roundtrip_reproduces_scores() {
        let g = test_graph(7);
        let mut arm = Arm::new(ArmConfig {
            epochs: 8,
            ..fast_cfg(GnnBackbone::Gat)
        });
        arm.fit(&g);
        let original = arm.scores(&g);
        let mut buf = Vec::new();
        arm.save(&mut buf).unwrap();
        let restored = Arm::load(&mut buf.as_slice()).unwrap();
        assert_eq!(restored.config().backbone, GnnBackbone::Gat);
        let reloaded = restored.scores(&g);
        for (a, b) in original.iter().zip(&reloaded) {
            assert_eq!(a, b, "restored ARM must score identically");
        }
    }

    #[test]
    fn load_rejects_foreign_checkpoints() {
        assert!(Arm::load(
            &mut b"# vgod-vbm v1
"
            .as_slice()
        )
        .is_err());
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn scoring_untrained_panics() {
        let g = test_graph(6);
        let arm = Arm::new(fast_cfg(GnnBackbone::Gcn));
        let _ = arm.scores(&g);
    }
}
