//! Configuration for the VGOD framework.

use vgod_gnn::GnnKind;

/// GNN family used as the ARM backbone (§V-B "GNN Layers", Table VIII).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GnnBackbone {
    /// Graph convolution network.
    Gcn,
    /// Graph attention network — the paper's default.
    Gat,
    /// Graph isomorphism network.
    Gin,
    /// GraphSAGE with mean aggregation (extension beyond the paper's three).
    Sage,
}

impl GnnBackbone {
    /// The corresponding `vgod-gnn` layer kind.
    pub fn kind(self) -> GnnKind {
        match self {
            GnnBackbone::Gcn => GnnKind::Gcn,
            GnnBackbone::Gat => GnnKind::Gat,
            GnnBackbone::Gin => GnnKind::Gin,
            GnnBackbone::Sage => GnnKind::Sage,
        }
    }
}

impl std::fmt::Display for GnnBackbone {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(&self.kind(), f)
    }
}

impl std::str::FromStr for GnnBackbone {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "gcn" => Ok(GnnBackbone::Gcn),
            "gat" => Ok(GnnBackbone::Gat),
            "gin" => Ok(GnnBackbone::Gin),
            "sage" => Ok(GnnBackbone::Sage),
            other => Err(format!("unknown GNN backbone {other:?}")),
        }
    }
}

/// Variance-based model hyperparameters (§VI-B2 defaults).
#[derive(Clone, Debug)]
pub struct VbmConfig {
    /// Hidden embedding dimension `d_h` (paper: 128).
    pub hidden_dim: usize,
    /// Training epochs (paper: 10 — VBM converges in a few epochs, Fig. 8).
    pub epochs: usize,
    /// Adam learning rate (paper: 0.005 injected / 0.01 Weibo).
    pub lr: f32,
    /// The self-loop-edge technique (Eq. 13): include each node in its own
    /// neighbourhood so neighbour variance also reacts to contextual
    /// outliers. The paper enables it on graphs with small average degree.
    pub self_loops: bool,
    /// RNG seed for initialisation and negative sampling.
    pub seed: u64,
}

impl Default for VbmConfig {
    fn default() -> Self {
        Self {
            hidden_dim: 128,
            epochs: 10,
            lr: 0.005,
            self_loops: true,
            seed: 0,
        }
    }
}

/// Attribute reconstruction model hyperparameters (§VI-B2 defaults).
#[derive(Clone, Debug)]
pub struct ArmConfig {
    /// Hidden embedding dimension (paper: 128).
    pub hidden_dim: usize,
    /// Number of GNN layers `L` (paper: 2).
    pub layers: usize,
    /// Backbone family (paper default: GAT).
    pub backbone: GnnBackbone,
    /// Training epochs (paper: 100).
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// L2-row-normalise the input attributes first (the paper applies row
    /// normalisation on Weibo).
    pub row_normalize: bool,
    /// RNG seed for initialisation.
    pub seed: u64,
}

impl Default for ArmConfig {
    fn default() -> Self {
        Self {
            hidden_dim: 128,
            layers: 2,
            backbone: GnnBackbone::Gat,
            epochs: 100,
            lr: 0.005,
            row_normalize: false,
            seed: 1,
        }
    }
}

/// How the structural and contextual scores are merged into the final
/// outlier score (§V-C and Appendix A).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CombineStrategy {
    /// Mean-std normalise each score vector, then sum (Eq. 19) — the
    /// paper's choice.
    MeanStd,
    /// Normalise each vector to sum to one, then sum (Eq. 23).
    SumToUnit,
    /// Fixed-weight sum `α·o^str + (1−α)·o^attr` of the raw scores — the
    /// baseline practice the paper argues against.
    Weighted(f32),
}

impl std::fmt::Display for CombineStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CombineStrategy::MeanStd => f.write_str("mean-std"),
            CombineStrategy::SumToUnit => f.write_str("sum-to-unit"),
            CombineStrategy::Weighted(a) => write!(f, "weighted(α={a})"),
        }
    }
}

/// Full framework configuration.
#[derive(Clone, Debug)]
pub struct VgodConfig {
    /// Variance-based model settings.
    pub vbm: VbmConfig,
    /// Attribute reconstruction model settings.
    pub arm: ArmConfig,
    /// Score combination strategy.
    pub combine: CombineStrategy,
    /// Worker threads for the tensor kernels. `None` (the default) defers to
    /// the `VGOD_NUM_THREADS` environment variable, falling back to the
    /// available CPU count; `Some(1)` forces fully sequential kernels. The
    /// thread count is process-global and fixed at the first parallel kernel
    /// invocation, so this only takes effect if training starts before any
    /// other component has run a kernel (see
    /// `vgod_tensor::threading::set_num_threads`).
    pub num_threads: Option<usize>,
}

impl Default for VgodConfig {
    fn default() -> Self {
        Self {
            vbm: VbmConfig::default(),
            arm: ArmConfig::default(),
            combine: CombineStrategy::MeanStd,
            num_threads: None,
        }
    }
}

impl VgodConfig {
    /// A reduced-cost configuration for tests and small graphs.
    pub fn fast() -> Self {
        let mut cfg = Self::default();
        cfg.vbm.hidden_dim = 32;
        cfg.vbm.epochs = 5;
        cfg.arm.hidden_dim = 32;
        cfg.arm.epochs = 30;
        cfg
    }

    /// Apply `num_threads` to the global tensor thread pool. Returns the
    /// thread count actually in effect — which differs from the request if
    /// the pool was already pinned by an earlier caller or env var.
    pub fn apply_threading(&self) -> usize {
        if let Some(n) = self.num_threads {
            let _ = vgod_tensor::threading::set_num_threads(n);
        }
        vgod_tensor::threading::num_threads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = VgodConfig::default();
        assert_eq!(cfg.vbm.hidden_dim, 128);
        assert_eq!(cfg.vbm.epochs, 10);
        assert_eq!(cfg.arm.epochs, 100);
        assert_eq!(cfg.arm.layers, 2);
        assert_eq!(cfg.arm.backbone, GnnBackbone::Gat);
        assert_eq!(cfg.combine, CombineStrategy::MeanStd);
    }

    #[test]
    fn backbone_maps_to_gnn_kind() {
        assert_eq!(GnnBackbone::Gcn.kind(), vgod_gnn::GnnKind::Gcn);
        assert_eq!(format!("{}", GnnBackbone::Gat), "GAT");
    }
}
