//! Mini-batch training for the variance-based model.
//!
//! §V-D of the paper: *"we can make use of various mini-batch training
//! techniques such as [GraphSAGE, Cluster-GCN, shaDow] to extend our model
//! in a large-scale network without much effort."* This module is that
//! extension: GraphSAGE-style neighbour-sampled mini-batches for VBM and
//! shaDow-style subgraph-sampled batches for ARM.
//!
//! Each epoch shuffles the training nodes into batches; for every batch it
//! samples at most `neighbor_cap` neighbours per node (plus degree-matched
//! negative neighbours), gathers only the attribute rows the batch touches,
//! and optimises the same contrastive variance objective (Eq. 11) on the
//! local subgraph. Peak memory per step is `O(batch · (cap + 1) · d)`
//! instead of `O(n · d)`.
//!
//! Everything here runs against any [`GraphStore`] backend — neighbour
//! lists, `has_edge` probes for negative sampling, and attribute gathers
//! all go through the store trait, so the same loops train from an
//! in-memory [`AttributedGraph`] or a demand-paged on-disk
//! `vgod_graph::OocStore`. The in-memory entry points delegate to the
//! store-generic ones and consume the RNG stream identically, so existing
//! seeded results are unchanged.

use rand::seq::SliceRandom;
use rand::Rng;
use vgod_autograd::{ParamStore, Tape};
use vgod_gnn::neighbor_variance_scores;
use vgod_graph::{seeded_rng, AttributedGraph, GraphStore};
use vgod_nn::{Adam, Linear, Optimizer};
use vgod_tensor::{Csr, Matrix};

use crate::{Vbm, VbmConfig};

/// Mini-batch schedule for [`Vbm::fit_minibatch`].
#[derive(Clone, Copy, Debug)]
pub struct MiniBatchConfig {
    /// Nodes per batch.
    pub batch_size: usize,
    /// Maximum sampled neighbours per node (GraphSAGE's fan-out); a node's
    /// full neighbourhood is used when its degree is below the cap.
    pub neighbor_cap: usize,
}

impl Default for MiniBatchConfig {
    fn default() -> Self {
        Self {
            batch_size: 512,
            neighbor_cap: 16,
        }
    }
}

/// A local (batch-induced) view: sampled positive and negative
/// neighbourhood aggregators over the gathered feature rows.
struct BatchView {
    /// Gathered attribute rows for every node the batch touches.
    features: Matrix,
    /// Mean aggregation over sampled real neighbours (`batch × touched`).
    pos: Csr,
    /// Mean aggregation over sampled negative neighbours.
    neg: Csr,
}

fn sample_up_to(pool: &[u32], cap: usize, rng: &mut impl Rng) -> Vec<u32> {
    if pool.len() <= cap {
        pool.to_vec()
    } else {
        rand::seq::index::sample(rng, pool.len(), cap)
            .iter()
            .map(|i| pool[i])
            .collect()
    }
}

fn build_batch_view(
    store: &dyn GraphStore,
    batch: &[u32],
    cfg: &MiniBatchConfig,
    self_loops: bool,
    rng: &mut impl Rng,
) -> BatchView {
    let n = store.num_nodes();
    // Local index assignment: batch nodes first, then touched neighbours.
    let mut local_of: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    let mut touched: Vec<u32> = Vec::new();
    let local = |u: u32,
                 touched: &mut Vec<u32>,
                 local_of: &mut std::collections::HashMap<u32, u32>|
     -> u32 {
        *local_of.entry(u).or_insert_with(|| {
            touched.push(u);
            (touched.len() - 1) as u32
        })
    };

    let mut nbrs: Vec<u32> = Vec::new();
    let mut pos_rows: Vec<Vec<u32>> = Vec::with_capacity(batch.len());
    let mut neg_rows: Vec<Vec<u32>> = Vec::with_capacity(batch.len());
    for &u in batch {
        store.neighbors_into(u, &mut nbrs);
        let mut pos: Vec<u32> = sample_up_to(&nbrs, cfg.neighbor_cap, rng)
            .into_iter()
            .map(|v| local(v, &mut touched, &mut local_of))
            .collect();
        // Degree-matched negative sampling (Definition 3) within the cap.
        let want = pos.len();
        let mut neg: Vec<u32> = Vec::with_capacity(want + 1);
        let mut guard = 0usize;
        while neg.len() < want && guard < want * 30 + 30 {
            guard += 1;
            let v = rng.gen_range(0..n as u32);
            if v != u && !store.has_edge(u, v) {
                neg.push(local(v, &mut touched, &mut local_of));
            }
        }
        if self_loops {
            let self_local = local(u, &mut touched, &mut local_of);
            pos.push(self_local);
            neg.push(self_local);
        }
        pos_rows.push(pos);
        neg_rows.push(neg);
    }

    let build = |rows: &[Vec<u32>]| -> Csr {
        let mut indptr = Vec::with_capacity(rows.len() + 1);
        indptr.push(0usize);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for nbrs in rows {
            let mut sorted = nbrs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if !sorted.is_empty() {
                let w = 1.0 / sorted.len() as f32;
                for &v in &sorted {
                    indices.push(v);
                    values.push(w);
                }
            }
            indptr.push(indices.len());
        }
        Csr::from_raw(rows.len(), touched.len(), indptr, indices, values)
    };
    let pos = build(&pos_rows);
    let neg = build(&neg_rows);
    let features = store.gather_attrs(&touched);
    BatchView { features, pos, neg }
}

impl Vbm {
    /// Train with GraphSAGE-style neighbour-sampled mini-batches instead of
    /// full-batch epochs. Produces a model interchangeable with
    /// [`Vbm::fit`] (same scoring path); detection quality matches
    /// full-batch training up to sampling noise.
    pub fn fit_minibatch(&mut self, g: &AttributedGraph, mb: &MiniBatchConfig) {
        self.fit_minibatch_store(g, mb);
    }

    /// [`Vbm::fit_minibatch`] against any [`GraphStore`] backend, batching
    /// over every node. For in-memory graphs this is the same computation
    /// (identical RNG stream) as the historical in-memory path.
    pub fn fit_minibatch_store(&mut self, store: &dyn GraphStore, mb: &MiniBatchConfig) {
        let order: Vec<u32> = (0..store.num_nodes() as u32).collect();
        self.fit_minibatch_nodes(store, mb, order);
    }

    /// [`Vbm::fit_minibatch_store`] restricted to an explicit training-node
    /// set (the store-backed large-graph path trains on a sampled seed
    /// subset instead of all `n` nodes). Each epoch shuffles `order` into
    /// batches; negative sampling still draws from the whole store.
    pub fn fit_minibatch_nodes(
        &mut self,
        store: &dyn GraphStore,
        mb: &MiniBatchConfig,
        mut order: Vec<u32>,
    ) {
        assert!(
            mb.batch_size >= 1 && mb.neighbor_cap >= 1,
            "degenerate mini-batch config"
        );
        assert!(!order.is_empty(), "empty training-node set");
        let cfg: VbmConfig = self.config().clone();
        let mut rng = seeded_rng(cfg.seed);
        let mut param_store = ParamStore::new();
        let linear = Linear::new(
            &mut param_store,
            store.num_attrs(),
            cfg.hidden_dim,
            true,
            &mut rng,
        );
        let mut opt = Adam::new(cfg.lr);

        vgod_tensor::arena::scope(|| {
            let tape = Tape::new();
            for _ in 0..cfg.epochs {
                order.shuffle(&mut rng);
                for batch in order.chunks(mb.batch_size) {
                    let view = build_batch_view(store, batch, mb, cfg.self_loops, &mut rng);
                    tape.reset();
                    let xv = tape.constant(view.features);
                    let h = linear.forward(&tape, &param_store, &xv).l2_normalize_rows();
                    let pos = std::rc::Rc::new(view.pos);
                    let neg = std::rc::Rc::new(view.neg);
                    let loss_pos = neighbor_variance_scores(&h, &pos).mean_all();
                    let loss_neg = neighbor_variance_scores(&h, &neg).mean_all();
                    let loss = loss_pos.sub(&loss_neg);
                    loss.backward_into(&mut param_store);
                    opt.step(&mut param_store);
                }
            }
        });
        self.install_state(param_store, linear, store.num_attrs());
    }
}

impl crate::Arm {
    /// Train with subgraph-sampled mini-batches (shaDow-GNN style, one of
    /// the §V-D techniques the paper cites): each step extracts the
    /// subgraph induced on a batch plus its sampled `layers`-hop
    /// neighbourhood, runs the ordinary ARM forward pass on it, and
    /// minimises the reconstruction error of the *batch* rows only.
    ///
    /// Works with every backbone (the local subgraph is a regular
    /// [`AttributedGraph`]); produces a model interchangeable with
    /// [`crate::Arm::fit`].
    ///
    /// **Epoch semantics:** one epoch is a full pass over the nodes, i.e.
    /// `⌈n / batch_size⌉` optimizer steps where a full-batch epoch takes
    /// one. Reconstruction models overfit with step count, so scale the
    /// configured epoch budget down accordingly (the `exp_minibatch`
    /// harness equalises total steps).
    pub fn fit_minibatch(&mut self, g: &AttributedGraph, mb: &MiniBatchConfig) {
        self.fit_minibatch_store(g, mb);
    }

    /// [`crate::Arm::fit_minibatch`] against any [`GraphStore`] backend,
    /// batching over every node. For in-memory graphs this is the same
    /// computation (identical RNG stream) as the historical in-memory path.
    pub fn fit_minibatch_store(&mut self, store: &dyn GraphStore, mb: &MiniBatchConfig) {
        let order: Vec<u32> = (0..store.num_nodes() as u32).collect();
        self.fit_minibatch_nodes(store, mb, order);
    }

    /// [`crate::Arm::fit_minibatch_store`] restricted to an explicit
    /// training-node set (the store-backed large-graph path trains on a
    /// sampled seed subset instead of all `n` nodes).
    pub fn fit_minibatch_nodes(
        &mut self,
        store: &dyn GraphStore,
        mb: &MiniBatchConfig,
        mut order: Vec<u32>,
    ) {
        assert!(
            mb.batch_size >= 1 && mb.neighbor_cap >= 1,
            "degenerate mini-batch config"
        );
        assert!(!order.is_empty(), "empty training-node set");
        let cfg = self.config().clone();
        let mut rng = seeded_rng(cfg.seed);
        let mut state = crate::Arm::build_state_for(&cfg, store.num_attrs());
        let mut opt = Adam::new(cfg.lr);

        vgod_tensor::arena::scope(|| {
            let tape = Tape::new();
            for _ in 0..cfg.epochs {
                order.shuffle(&mut rng);
                for batch in order.chunks(mb.batch_size) {
                    let (local_graph, batch_local) =
                        sampled_subgraph(store, batch, cfg.layers, mb.neighbor_cap, &mut rng);
                    let ctx = vgod_gnn::GraphContext::from_graph(&local_graph);
                    let x = if cfg.row_normalize {
                        local_graph.attrs().l2_normalize_rows(1e-6).0
                    } else {
                        local_graph.attrs().clone()
                    };
                    tape.reset();
                    let xv = tape.constant(x);
                    let xhat = crate::Arm::forward_state(&state, &tape, &xv, &ctx);
                    let batch_ids = std::rc::Rc::new(batch_local.clone());
                    let loss = xhat
                        .sub(&xv)
                        .square()
                        .row_sum()
                        .gather_rows(&batch_ids)
                        .mean_all();
                    loss.backward_into(state.store_mut());
                    opt.step(state.store_mut());
                }
            }
        });
        self.install_state(state);
    }
}

/// Extract the subgraph induced on `batch` plus its sampled `hops`-hop
/// neighbourhood (at most `cap` sampled neighbours per node per hop).
/// Returns the local graph (batch nodes first) and the local ids of the
/// batch nodes. Labels are not carried over (training never reads them);
/// adjacency and attributes are identical to what
/// `AttributedGraph::induced_subgraph` would build on an in-memory graph.
fn sampled_subgraph(
    store: &dyn GraphStore,
    batch: &[u32],
    hops: usize,
    cap: usize,
    rng: &mut impl Rng,
) -> (AttributedGraph, Vec<u32>) {
    let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
    let mut touched: Vec<u32> = Vec::new();
    for &u in batch {
        if seen.insert(u) {
            touched.push(u);
        }
    }
    let batch_local: Vec<u32> = (0..touched.len() as u32).collect();

    let mut nbrs: Vec<u32> = Vec::new();
    let mut frontier: Vec<u32> = touched.clone();
    for _ in 0..hops {
        let mut next = Vec::new();
        for &u in &frontier {
            store.neighbors_into(u, &mut nbrs);
            for v in sample_up_to(&nbrs, cap, rng) {
                if seen.insert(v) {
                    touched.push(v);
                    next.push(v);
                }
            }
        }
        frontier = next;
    }

    // Induced edges among the touched nodes, matching `induced_subgraph`
    // (rows sorted by local id; symmetric because the store is).
    let mut local_of: std::collections::HashMap<u32, u32> =
        std::collections::HashMap::with_capacity(touched.len());
    for (i, &u) in touched.iter().enumerate() {
        local_of.insert(u, i as u32);
    }
    let mut adj: Vec<Vec<u32>> = Vec::with_capacity(touched.len());
    for &u in &touched {
        store.neighbors_into(u, &mut nbrs);
        let mut row: Vec<u32> = nbrs
            .iter()
            .filter_map(|v| local_of.get(v).copied())
            .collect();
        row.sort_unstable();
        adj.push(row);
    }
    let x = store.gather_attrs(&touched);
    (AttributedGraph::from_sorted_adj(adj, x, None), batch_local)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgod_eval::auc;
    use vgod_graph::{community_graph, gaussian_mixture_attributes, CommunityGraphConfig};
    use vgod_inject::{inject_structural, GroundTruth, StructuralParams};

    fn injected(seed: u64) -> (AttributedGraph, GroundTruth) {
        let mut rng = seeded_rng(seed);
        let mut g = community_graph(
            &CommunityGraphConfig::homogeneous(300, 4, 5.0, 0.92),
            &mut rng,
        );
        let x = gaussian_mixture_attributes(g.labels().unwrap(), 16, 4.0, 0.6, &mut rng);
        g.set_attrs(x);
        let mut truth = GroundTruth::new(g.num_nodes());
        inject_structural(
            &mut g,
            &mut truth,
            &StructuralParams {
                num_cliques: 3,
                clique_size: 8,
            },
            &mut rng,
        );
        (g, truth)
    }

    fn cfg() -> VbmConfig {
        VbmConfig {
            hidden_dim: 16,
            epochs: 6,
            lr: 0.01,
            self_loops: false,
            seed: 5,
        }
    }

    #[test]
    fn minibatch_matches_full_batch_quality() {
        let (g, truth) = injected(1);
        let mask = truth.outlier_mask();

        let mut full = Vbm::new(cfg());
        full.fit(&g);
        let auc_full = auc(&full.scores(&g), &mask);

        let mut mini = Vbm::new(cfg());
        mini.fit_minibatch(
            &g,
            &MiniBatchConfig {
                batch_size: 64,
                neighbor_cap: 8,
            },
        );
        let auc_mini = auc(&mini.scores(&g), &mask);

        assert!(auc_mini > 0.8, "mini-batch AUC = {auc_mini}");
        assert!(
            (auc_full - auc_mini).abs() < 0.1,
            "mini-batch ({auc_mini}) should track full-batch ({auc_full})"
        );
    }

    #[test]
    fn minibatch_with_self_loops_trains() {
        let (g, truth) = injected(2);
        let mut vbm = Vbm::new(VbmConfig {
            self_loops: true,
            ..cfg()
        });
        vbm.fit_minibatch(
            &g,
            &MiniBatchConfig {
                batch_size: 50,
                neighbor_cap: 4,
            },
        );
        assert!(vbm.is_fitted());
        let a = auc(&vbm.scores(&g), &truth.outlier_mask());
        assert!(a > 0.7, "self-loop mini-batch AUC = {a}");
    }

    #[test]
    fn tiny_batches_and_caps_still_work() {
        let (g, _) = injected(3);
        let mut vbm = Vbm::new(VbmConfig { epochs: 2, ..cfg() });
        vbm.fit_minibatch(
            &g,
            &MiniBatchConfig {
                batch_size: 1,
                neighbor_cap: 1,
            },
        );
        let scores = vbm.scores(&g);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn minibatch_nodes_subset_trains_a_usable_model() {
        let (g, truth) = injected(6);
        // Train on a strict subset of nodes (what the store-backed
        // large-graph path does with sampled training seeds).
        let subset: Vec<u32> = (0..g.num_nodes() as u32).step_by(2).collect();
        let mut vbm = Vbm::new(cfg());
        vbm.fit_minibatch_nodes(
            &g,
            &MiniBatchConfig {
                batch_size: 64,
                neighbor_cap: 8,
            },
            subset,
        );
        assert!(vbm.is_fitted());
        let a = auc(&vbm.scores(&g), &truth.outlier_mask());
        assert!(a > 0.7, "subset-trained AUC = {a}");
    }

    #[test]
    fn arm_minibatch_matches_full_batch_quality() {
        use vgod_inject::{inject_contextual, ContextualParams, DistanceMetric};
        let mut rng = seeded_rng(8);
        let mut g = vgod_graph::community_graph(
            &vgod_graph::CommunityGraphConfig::homogeneous(260, 4, 5.0, 0.92),
            &mut rng,
        );
        let x =
            vgod_graph::gaussian_mixture_attributes(g.labels().unwrap(), 12, 4.0, 0.5, &mut rng);
        g.set_attrs(x);
        let mut truth = GroundTruth::new(g.num_nodes());
        inject_contextual(
            &mut g,
            &mut truth,
            &ContextualParams {
                count: 14,
                candidates: 30,
                metric: DistanceMetric::Euclidean,
            },
            &mut rng,
        );
        let mask = truth.outlier_mask();
        let arm_cfg = crate::ArmConfig {
            hidden_dim: 16,
            layers: 2,
            backbone: crate::GnnBackbone::Gcn,
            epochs: 40,
            lr: 0.01,
            row_normalize: false,
            seed: 3,
        };
        let mut full = crate::Arm::new(arm_cfg.clone());
        full.fit(&g);
        let auc_full = auc(&full.scores(&g), &mask);

        let mut mini = crate::Arm::new(arm_cfg);
        mini.fit_minibatch(
            &g,
            &MiniBatchConfig {
                batch_size: 64,
                neighbor_cap: 8,
            },
        );
        let auc_mini = auc(&mini.scores(&g), &mask);
        assert!(auc_mini > 0.7, "ARM mini-batch AUC = {auc_mini}");
        assert!(
            (auc_full - auc_mini).abs() < 0.15,
            "ARM mini-batch ({auc_mini}) should track full-batch ({auc_full})"
        );
    }

    #[test]
    fn sampled_subgraph_is_well_formed() {
        let (g, _) = injected(7);
        let mut rng = seeded_rng(0);
        let batch: Vec<u32> = vec![0, 5, 9];
        let (local, batch_local) = sampled_subgraph(&g, &batch, 2, 4, &mut rng);
        assert!(local.check_invariants());
        assert_eq!(batch_local, vec![0, 1, 2], "batch nodes come first");
        // Batch attributes preserved.
        for (i, &u) in batch.iter().enumerate() {
            assert_eq!(local.attrs().row(i), g.attrs().row(u as usize));
        }
        // Induced edges exist in the original graph.
        for (lu, lv) in local.undirected_edges() {
            let _ = (lu, lv); // ids are local; existence checked via construction
        }
        assert!(local.num_nodes() <= g.num_nodes());
    }

    #[test]
    fn sampled_subgraph_matches_induced_subgraph_semantics() {
        // Same seed through the store-generic path and a hand-run of the
        // legacy in-memory construction must give identical local graphs.
        let (g, _) = injected(9);
        let batch: Vec<u32> = vec![3, 17, 40, 55];
        let mut rng_a = seeded_rng(11);
        let (local, _) = sampled_subgraph(&g, &batch, 2, 4, &mut rng_a);

        // Legacy construction: BFS with identical RNG, then
        // AttributedGraph::induced_subgraph.
        let mut rng_b = seeded_rng(11);
        let mut seen: std::collections::HashSet<u32> = batch.iter().copied().collect();
        let mut touched: Vec<u32> = batch.clone();
        let mut frontier = batch.clone();
        for _ in 0..2 {
            let mut next = Vec::new();
            for &u in &frontier {
                for v in sample_up_to(g.neighbors(u), 4, &mut rng_b) {
                    if seen.insert(v) {
                        touched.push(v);
                        next.push(v);
                    }
                }
            }
            frontier = next;
        }
        let legacy = g.induced_subgraph(&touched);
        assert_eq!(local.num_nodes(), legacy.num_nodes());
        assert_eq!(local.undirected_edges(), legacy.undirected_edges());
        assert_eq!(local.attrs().as_slice(), legacy.attrs().as_slice());
    }

    #[test]
    #[should_panic(expected = "degenerate mini-batch config")]
    fn zero_batch_size_panics() {
        let (g, _) = injected(4);
        let mut vbm = Vbm::new(cfg());
        vbm.fit_minibatch(
            &g,
            &MiniBatchConfig {
                batch_size: 0,
                neighbor_cap: 4,
            },
        );
    }
}
