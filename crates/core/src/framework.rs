//! The VGOD framework (§V-C, Algorithm 1).

use vgod_eval::{
    combine_mean_std, combine_sum_to_unit, full_graph_view, DeltaCapability, OutlierDetector,
    RangeScores, ScoreMerge, Scores,
};
use vgod_graph::{AttributedGraph, GraphStore, NeighborSampler, SamplingConfig};

use crate::{Arm, CombineStrategy, MiniBatchConfig, Vbm, VgodConfig};

/// The mini-batch schedule implied by a sampling config (store-backed
/// training reuses the §V-D mini-batch machinery with the sampler's batch
/// size and fan-out).
fn minibatch_of(cfg: &SamplingConfig) -> MiniBatchConfig {
    MiniBatchConfig {
        batch_size: cfg.batch_size,
        neighbor_cap: cfg.fanout,
    }
}

/// Variance-based Graph Outlier Detection: the paper's full framework.
///
/// Trains the [`Vbm`] and [`Arm`] *separately* (different epoch budgets, no
/// shared loss — §V-C argues joint training with a fixed weight causes
/// unbalanced optimisation), then combines their scores with mean-std
/// normalisation (Eq. 19) at inference time.
///
/// Implements [`OutlierDetector`], supporting both the transductive UNOD
/// protocol and the inductive protocol of Appendix B (every hyperparameter
/// is decoupled from the graph size, so a trained model scores any graph
/// with the same attribute schema).
#[derive(Clone, Debug)]
pub struct Vgod {
    cfg: VgodConfig,
    vbm: Vbm,
    arm: Arm,
}

impl Vgod {
    /// An untrained framework. Applies `cfg.num_threads` to the tensor
    /// worker pool (a process-global setting; see
    /// [`VgodConfig::apply_threading`]).
    pub fn new(cfg: VgodConfig) -> Self {
        cfg.apply_threading();
        let vbm = Vbm::new(cfg.vbm.clone());
        let arm = Arm::new(cfg.arm.clone());
        Self { cfg, vbm, arm }
    }

    /// The configuration.
    pub fn config(&self) -> &VgodConfig {
        &self.cfg
    }

    /// The variance-based component (after `fit`).
    pub fn vbm(&self) -> &Vbm {
        &self.vbm
    }

    /// The attribute-reconstruction component (after `fit`).
    pub fn arm(&self) -> &Arm {
        &self.arm
    }

    /// Write the trained framework (both models and the combine strategy)
    /// as a plain-text checkpoint.
    ///
    /// # Panics
    /// Panics if either model is untrained.
    pub fn save(&self, out: &mut impl std::io::Write) -> std::io::Result<()> {
        writeln!(out, "# vgod-framework v1")?;
        let combine = match self.cfg.combine {
            CombineStrategy::MeanStd => "mean-std".to_string(),
            CombineStrategy::SumToUnit => "sum-to-unit".to_string(),
            CombineStrategy::Weighted(a) => format!("weighted:{a}"),
        };
        writeln!(out, "combine {combine}")?;
        self.vbm.save(out)?;
        self.arm.save(out)
    }

    /// Read a checkpoint written by [`Vgod::save`].
    pub fn load(input: &mut impl std::io::BufRead) -> Result<Vgod, String> {
        let mut magic = String::new();
        input.read_line(&mut magic).map_err(|e| e.to_string())?;
        if magic.trim() != "# vgod-framework v1" {
            return Err(format!("not a vgod-framework checkpoint: {magic:?}"));
        }
        let mut line = String::new();
        input.read_line(&mut line).map_err(|e| e.to_string())?;
        let combine = match line.trim().strip_prefix("combine ") {
            Some("mean-std") => CombineStrategy::MeanStd,
            Some("sum-to-unit") => CombineStrategy::SumToUnit,
            Some(other) => match other.strip_prefix("weighted:") {
                Some(alpha) => CombineStrategy::Weighted(
                    alpha.parse().map_err(|e| format!("bad weight: {e}"))?,
                ),
                None => return Err(format!("unknown combine strategy {other:?}")),
            },
            None => return Err(format!("bad combine line: {line:?}")),
        };
        let vbm = Vbm::load(input)?;
        let arm = Arm::load(input)?;
        let cfg = VgodConfig {
            vbm: vbm.config().clone(),
            arm: arm.config().clone(),
            combine,
            num_threads: None,
        };
        Ok(Vgod { cfg, vbm, arm })
    }

    /// Combine structural and contextual scores per the configured strategy.
    pub fn combine(&self, structural: &[f32], contextual: &[f32]) -> Vec<f32> {
        match self.cfg.combine {
            CombineStrategy::MeanStd => combine_mean_std(structural, contextual),
            CombineStrategy::SumToUnit => combine_sum_to_unit(structural, contextual),
            CombineStrategy::Weighted(alpha) => structural
                .iter()
                .zip(contextual)
                .map(|(&s, &c)| alpha * s + (1.0 - alpha) * c)
                .collect(),
        }
    }
}

impl OutlierDetector for Vgod {
    fn name(&self) -> &'static str {
        "VGOD"
    }

    fn fit(&mut self, g: &AttributedGraph) {
        // Algorithm 1: train VBM for Epoch_VBM, then ARM for Epoch_ARM.
        self.vbm.fit(g);
        self.arm.fit(g);
    }

    fn score(&self, g: &AttributedGraph) -> Scores {
        let structural = self.vbm.scores(g);
        let contextual = self.arm.scores(g);
        let combined = self.combine(&structural, &contextual);
        Scores {
            combined,
            structural: Some(structural),
            contextual: Some(contextual),
        }
    }

    fn fit_store(&mut self, store: &dyn GraphStore, cfg: &SamplingConfig) {
        // Algorithm 1 against any backend: both components train through
        // their own store-backed mini-batch paths.
        self.vbm.fit_store(store, cfg);
        self.arm.fit_store(store, cfg);
    }

    fn score_store(&self, store: &dyn GraphStore, cfg: &SamplingConfig) -> Scores {
        // Score combination (Eq. 19) is a *global* normalisation, so the
        // components are scored across all batches first and combined once
        // at full length — per-batch combination would normalise against
        // batch statistics and distort the ranking.
        let structural = self.vbm.score_store(store, cfg).combined;
        let contextual = self.arm.score_store(store, cfg).combined;
        let combined = self.combine(&structural, &contextual);
        Scores {
            combined,
            structural: Some(structural),
            contextual: Some(contextual),
        }
    }

    fn score_store_range(
        &self,
        store: &dyn GraphStore,
        cfg: &SamplingConfig,
        lo: u32,
        hi: u32,
    ) -> RangeScores {
        if let Some(g) = full_graph_view(store, cfg) {
            // Already globally combined by the full pass; the coordinator
            // only needs to concatenate the rows.
            return RangeScores {
                scores: self.score(&g).slice_range(lo as usize, hi as usize),
                merge: ScoreMerge::Concat,
            };
        }
        // Ship raw per-range components; the *global* Eq. 19 combination
        // must run over full-length vectors, so it moves to the merge rule
        // applied by the coordinator after concatenation. The local
        // `combined` is a range-normalised placeholder, overwritten there.
        let structural = self
            .vbm
            .score_store_range(store, cfg, lo, hi)
            .scores
            .combined;
        let contextual = self
            .arm
            .score_store_range(store, cfg, lo, hi)
            .scores
            .combined;
        let combined = self.combine(&structural, &contextual);
        let merge = match self.cfg.combine {
            CombineStrategy::MeanStd => ScoreMerge::MeanStd,
            CombineStrategy::SumToUnit => ScoreMerge::SumToUnit,
            CombineStrategy::Weighted(alpha) => ScoreMerge::Weighted(alpha),
        };
        RangeScores {
            scores: Scores {
                combined,
                structural: Some(structural),
                contextual: Some(contextual),
            },
            merge,
        }
    }

    fn delta_capability(&self) -> DeltaCapability {
        // Receptive field = the wider component: VBM is 1-hop, ARM is its
        // GCN/GAT depth plus one ring for exact endpoint degrees. The
        // global Eq. 19 combination becomes the merge rule, exactly as in
        // the sharded path above.
        let hops = match self.arm.delta_capability() {
            DeltaCapability::Local { hops, .. } => hops.max(1),
            _ => unreachable!("ARM is always local"),
        };
        let merge = match self.cfg.combine {
            CombineStrategy::MeanStd => ScoreMerge::MeanStd,
            CombineStrategy::SumToUnit => ScoreMerge::SumToUnit,
            CombineStrategy::Weighted(alpha) => ScoreMerge::Weighted(alpha),
        };
        DeltaCapability::Local { hops, merge }
    }
}

impl OutlierDetector for Vbm {
    fn name(&self) -> &'static str {
        "VBM"
    }

    fn fit(&mut self, g: &AttributedGraph) {
        Vbm::fit(self, g);
    }

    fn score(&self, g: &AttributedGraph) -> Scores {
        let s = self.scores(g);
        Scores {
            combined: s.clone(),
            structural: Some(s),
            contextual: None,
        }
    }

    fn fit_store(&mut self, store: &dyn GraphStore, cfg: &SamplingConfig) {
        match full_graph_view(store, cfg) {
            Some(g) => Vbm::fit(self, &g),
            None => {
                // Large graph: GraphSAGE-style mini-batches over a sampled
                // training-seed subset, streaming neighbourhoods and
                // attribute rows from the store.
                let seeds = NeighborSampler::new(store, *cfg).training_seeds();
                self.fit_minibatch_nodes(store, &minibatch_of(cfg), seeds);
            }
        }
    }

    fn delta_capability(&self) -> DeltaCapability {
        // Variance over direct neighbours' embeddings of their own
        // attributes (Eq. 14): strictly 1-hop, raw row sums.
        DeltaCapability::Local {
            hops: 1,
            merge: ScoreMerge::Concat,
        }
    }
}

impl OutlierDetector for Arm {
    fn name(&self) -> &'static str {
        "ARM"
    }

    fn fit(&mut self, g: &AttributedGraph) {
        Arm::fit(self, g);
    }

    fn score(&self, g: &AttributedGraph) -> Scores {
        let s = self.scores(g);
        Scores {
            combined: s.clone(),
            structural: None,
            contextual: Some(s),
        }
    }

    fn fit_store(&mut self, store: &dyn GraphStore, cfg: &SamplingConfig) {
        match full_graph_view(store, cfg) {
            Some(g) => Arm::fit(self, &g),
            None => {
                // shaDow-style subgraph mini-batches over sampled seeds.
                let seeds = NeighborSampler::new(store, *cfg).training_seeds();
                self.fit_minibatch_nodes(store, &minibatch_of(cfg), seeds);
            }
        }
    }

    fn delta_capability(&self) -> DeltaCapability {
        // `layers` rounds of message passing, plus one ring so the GCN/GAT
        // normalisation sees exact degrees for every closure endpoint.
        DeltaCapability::Local {
            hops: self.config().layers + 1,
            merge: ScoreMerge::Concat,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgod_eval::{auc, auc_gap, auc_subset};
    use vgod_graph::{
        community_graph, gaussian_mixture_attributes, seeded_rng, CommunityGraphConfig,
    };
    use vgod_inject::{inject_standard, ContextualParams, DistanceMetric, StructuralParams};

    fn injected_case(seed: u64) -> (AttributedGraph, vgod_inject::GroundTruth) {
        let mut rng = seeded_rng(seed);
        let mut g = community_graph(
            &CommunityGraphConfig::homogeneous(260, 4, 5.0, 0.92),
            &mut rng,
        );
        let x = gaussian_mixture_attributes(g.labels().unwrap(), 16, 4.0, 0.5, &mut rng);
        g.set_attrs(x);
        let sp = StructuralParams {
            num_cliques: 2,
            clique_size: 7,
        };
        let cp = ContextualParams {
            count: 14,
            candidates: 40,
            metric: DistanceMetric::Euclidean,
        };
        let truth = inject_standard(&mut g, &sp, &cp, &mut rng);
        (g, truth)
    }

    fn fast() -> VgodConfig {
        let mut cfg = VgodConfig::fast();
        cfg.vbm.hidden_dim = 16;
        cfg.arm.hidden_dim = 16;
        cfg.arm.backbone = crate::GnnBackbone::Gcn;
        cfg
    }

    #[test]
    fn detects_both_outlier_types_with_balance() {
        let (g, truth) = injected_case(31);
        let mut model = Vgod::new(fast());
        let scores = model.fit_score(&g);
        let overall = auc(&scores.combined, &truth.outlier_mask());
        assert!(overall > 0.8, "overall AUC {overall}");
        let a_str = auc_subset(&scores.combined, &truth.structural_mask());
        let a_ctx = auc_subset(&scores.combined, &truth.contextual_mask());
        let gap = auc_gap(a_str, a_ctx);
        assert!(gap < 1.4, "AucGap {gap} (str {a_str}, ctx {a_ctx})");
    }

    #[test]
    fn component_scores_specialise() {
        let (g, truth) = injected_case(32);
        let mut model = Vgod::new(fast());
        let scores = model.fit_score(&g);
        let vbm_on_str = auc(
            scores.structural.as_ref().unwrap(),
            &truth.structural_mask(),
        );
        let arm_on_ctx = auc(
            scores.contextual.as_ref().unwrap(),
            &truth.contextual_mask(),
        );
        assert!(vbm_on_str > 0.75, "VBM on structural: {vbm_on_str}");
        assert!(arm_on_ctx > 0.75, "ARM on contextual: {arm_on_ctx}");
    }

    #[test]
    fn combine_strategies_differ_but_stay_monotone() {
        let model = Vgod::new(VgodConfig::default());
        let s = vec![10.0, 0.0, 5.0];
        let c = vec![0.0, 2.0, 1.0];
        let mean_std = model.combine(&s, &c);
        assert_eq!(mean_std.len(), 3);
        let mut weighted_model = Vgod::new(VgodConfig {
            combine: CombineStrategy::Weighted(0.5),
            ..VgodConfig::default()
        });
        let weighted = weighted_model.combine(&s, &c);
        assert_eq!(weighted, vec![5.0, 1.0, 3.0]);
        weighted_model.cfg.combine = CombineStrategy::SumToUnit;
        let unit = weighted_model.combine(&s, &c);
        assert!((unit.iter().sum::<f32>() - 2.0).abs() < 1e-5);
    }

    #[test]
    fn inductive_inference_matches_protocol() {
        let (g_train, _) = injected_case(33);
        let (g_test, truth_test) = injected_case(34);
        let mut model = Vgod::new(fast());
        model.fit(&g_train);
        let scores = model.score(&g_test);
        let a = auc(&scores.combined, &truth_test.outlier_mask());
        assert!(a > 0.7, "inductive AUC {a}");
    }

    #[test]
    fn framework_checkpoint_roundtrip() {
        let (g, _) = injected_case(35);
        let mut model = Vgod::new(VgodConfig {
            combine: CombineStrategy::Weighted(0.3),
            ..fast()
        });
        model.fit(&g);
        let original = model.score(&g);
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let restored = Vgod::load(&mut buf.as_slice()).unwrap();
        assert_eq!(restored.config().combine, CombineStrategy::Weighted(0.3));
        let reloaded = restored.score(&g);
        assert_eq!(original.combined, reloaded.combined);
        assert_eq!(original.structural, reloaded.structural);
    }

    #[test]
    fn framework_load_rejects_component_checkpoints() {
        assert!(Vgod::load(&mut b"# vgod-vbm v1\n".as_slice()).is_err());
        assert!(Vgod::load(&mut b"# vgod-framework v1\ncombine bogus\n".as_slice()).is_err());
    }

    #[test]
    fn detector_name_is_stable() {
        assert_eq!(Vgod::new(VgodConfig::default()).name(), "VGOD");
    }

    #[test]
    fn store_scoring_below_threshold_is_bit_identical() {
        let (g, _) = injected_case(36);
        let mut model = Vgod::new(fast());
        model.fit(&g);
        let direct = model.score(&g);
        // Default threshold (20k) far exceeds 260 nodes: the store path
        // must take the full-graph fast path and reproduce `score` exactly.
        let via_store = model.score_store(&g, &SamplingConfig::default());
        assert_eq!(direct.combined, via_store.combined);
        assert_eq!(direct.structural, via_store.structural);
        assert_eq!(direct.contextual, via_store.contextual);
    }

    #[test]
    fn store_fit_below_threshold_is_bit_identical() {
        let (g, _) = injected_case(38);
        let mut direct = Vgod::new(fast());
        direct.fit(&g);
        let mut stored = Vgod::new(fast());
        stored.fit_store(&g, &SamplingConfig::default());
        assert_eq!(direct.score(&g).combined, stored.score(&g).combined);
    }

    #[test]
    fn store_scoring_above_threshold_samples_and_combines_globally() {
        let (g, truth) = injected_case(37);
        let scfg = SamplingConfig {
            full_graph_threshold: 50, // force the sampled path on 260 nodes
            batch_size: 64,
            fanout: 8,
            hops: 2,
            train_seeds: 200,
            seed: 9,
            ..SamplingConfig::default()
        };
        let mut model = Vgod::new(fast());
        model.fit_store(&g, &scfg);
        let s = model.score_store(&g, &scfg);
        assert_eq!(s.combined.len(), g.num_nodes());
        assert!(s.combined.iter().all(|v| v.is_finite()));
        assert_eq!(s.structural.as_ref().unwrap().len(), g.num_nodes());
        assert_eq!(s.contextual.as_ref().unwrap().len(), g.num_nodes());
        // Sampled scoring is approximate but must stay informative.
        let a = auc(&s.combined, &truth.outlier_mask());
        assert!(a > 0.6, "sampled VGOD AUC = {a}");
    }
}
