//! # vgod — Variance-based Graph Outlier Detection
//!
//! The primary contribution of *"Unsupervised Graph Outlier Detection:
//! Problem Revisit, New Insight, and Superior Method"* (ICDE 2023),
//! implemented from scratch in Rust:
//!
//! * [`Vbm`] — the **Variance-Based Model** (§V-A): a linear +
//!   row-L2-normalised feature transform (Eq. 5–6) whose neighbour variance
//!   (Eq. 7–9, the MeanConv/MinusConv layers) scores structural outliers,
//!   trained contrastively against per-epoch negative-sampled neighbourhoods
//!   (Eq. 10–12), with the optional self-loop-edge technique (Eq. 13);
//! * [`Arm`] — the **Attribute Reconstruction Model** (§V-B): feature
//!   transform → `L` GNN layers (GCN/GAT/GIN/SAGE pluggable) → feature
//!   retransform, trained to minimise attribute reconstruction error
//!   (Eq. 14–18), scoring contextual outliers;
//! * [`Vgod`] — the full framework (§V-C, Algorithm 1): the two models are
//!   trained *separately* (avoiding unbalanced optimisation) and their
//!   scores combined after mean-std normalisation (Eq. 19).
//!
//! ```no_run
//! use vgod::{Vgod, VgodConfig};
//! use vgod_datasets::{replica, Dataset, Scale};
//! use vgod_eval::{auc, OutlierDetector};
//! use vgod_graph::seeded_rng;
//! use vgod_inject::{inject_standard, ContextualParams, StructuralParams};
//!
//! let mut rng = seeded_rng(0);
//! let mut r = replica(Dataset::CoraLike, Scale::Tiny, &mut rng);
//! let sp = StructuralParams { num_cliques: 2, clique_size: 8 };
//! let cp = ContextualParams::standard(&sp);
//! let truth = inject_standard(&mut r.graph, &sp, &cp, &mut rng);
//!
//! let mut model = Vgod::new(VgodConfig::default());
//! let scores = model.fit_score(&r.graph);
//! println!("AUC = {}", auc(&scores.combined, &truth.outlier_mask()));
//! ```

#![warn(missing_docs)]

mod arm;
mod config;
mod framework;
mod minibatch;
pub mod persist;
mod vbm;

pub use arm::Arm;
pub use config::{ArmConfig, CombineStrategy, GnnBackbone, VbmConfig, VgodConfig};
pub use framework::Vgod;
pub use minibatch::MiniBatchConfig;
pub use vbm::{Vbm, VbmEpochSnapshot};

// Out-of-core storage and sampling (re-exported from `vgod_graph` so the
// core crate is a one-stop API for store-backed training/scoring).
pub use vgod_graph::{
    parse_mem_budget, GraphStore, NeighborSampler, OocStore, SampledBatch, SamplingConfig,
    StoreStats, SynthStoreConfig,
};
