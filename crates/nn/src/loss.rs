//! Loss helpers shared by the reconstruction-style models.

use vgod_autograd::Var;
use vgod_tensor::Matrix;

/// Mean-squared-error loss `mean((pred − target)²)` as a scalar variable.
pub fn mse_loss(pred: &Var, target: &Var) -> Var {
    pred.sub(target).square().mean_all()
}

/// Per-row squared reconstruction errors `‖x̂_i − x_i‖²` (Eq. 17 of the VGOD
/// paper), computed on plain matrices for inference-time scoring.
pub fn row_reconstruction_errors(reconstruction: &Matrix, original: &Matrix) -> Vec<f32> {
    assert_eq!(
        reconstruction.shape(),
        original.shape(),
        "row_reconstruction_errors: shape mismatch"
    );
    (0..original.rows())
        .map(|r| {
            reconstruction
                .row(r)
                .iter()
                .zip(original.row(r))
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgod_autograd::Tape;

    #[test]
    fn mse_of_equal_inputs_is_zero() {
        let tape = Tape::new();
        let a = tape.constant(Matrix::filled(2, 3, 1.5));
        let b = tape.constant(Matrix::filled(2, 3, 1.5));
        assert_eq!(mse_loss(&a, &b).value().as_slice(), &[0.0]);
    }

    #[test]
    fn mse_matches_manual() {
        let tape = Tape::new();
        let a = tape.constant(Matrix::from_rows(&[&[1.0, 2.0]]));
        let b = tape.constant(Matrix::from_rows(&[&[0.0, 4.0]]));
        // ((1)² + (−2)²) / 2 = 2.5
        assert!((mse_loss(&a, &b).value().as_slice()[0] - 2.5).abs() < 1e-6);
    }

    #[test]
    fn row_errors_match_manual() {
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]);
        let xh = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 0.0]]);
        assert_eq!(row_reconstruction_errors(&xh, &x), vec![1.0, 4.0]);
    }
}
