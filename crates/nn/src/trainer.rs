//! The shared training loop used by every deep detector in the workspace.
//!
//! All seven deep models in the paper's evaluation (VBM, ARM and the five
//! deep baselines) train the same way: an Adam-driven epoch loop over a
//! full-graph forward/backward pass. [`Trainer`] centralises that loop and
//! layers the runtime machinery under it: each run engages the
//! `vgod_tensor::arena` buffer-recycling scope, records every epoch onto a
//! single recycled [`Tape`] (via [`Tape::reset`]), and times the loop with a
//! monotonic clock so per-epoch cost is observable from every call site.

use std::time::{Duration, Instant};

use vgod_autograd::{ParamStore, Tape, Var};

use crate::{Adam, EarlyStopper, Optimizer};

/// Configuration + driver for a full-graph training loop.
///
/// The model supplies two closures to [`Trainer::run`]:
///
/// - `forward(tape, epoch, store) -> Var` rebuilds the scalar loss for the
///   (1-based) epoch. Any per-epoch randomness (negative sampling, view
///   augmentation) happens inside, keeping the RNG stream identical to a
///   hand-rolled loop. All `Var`s must be created on the tape passed in —
///   it is reset between epochs, so none may be retained across calls.
/// - `on_epoch(epoch, loss, store)` observes the finished epoch *after* the
///   Adam step, mirroring the models' existing callback semantics.
#[derive(Clone, Debug)]
pub struct Trainer {
    epochs: usize,
    lr: f32,
    early_stop: Option<(usize, f32)>,
}

/// What a [`Trainer::run`] did: how far it got, where the loss ended, and
/// how long the loop took.
#[derive(Clone, Copy, Debug)]
pub struct TrainSummary {
    /// Number of epochs actually executed (< `epochs` if stopped early).
    pub epochs_run: usize,
    /// Loss of the last executed epoch (NaN if no epoch ran).
    pub final_loss: f32,
    /// Wall-clock time spent inside the epoch loop.
    pub elapsed: Duration,
}

impl TrainSummary {
    /// Mean wall-clock time per executed epoch.
    pub fn avg_epoch(&self) -> Duration {
        if self.epochs_run == 0 {
            Duration::ZERO
        } else {
            self.elapsed / self.epochs_run as u32
        }
    }
}

impl Trainer {
    /// A trainer running `epochs` Adam steps at learning rate `lr`.
    pub fn new(epochs: usize, lr: f32) -> Self {
        Self {
            epochs,
            lr,
            early_stop: None,
        }
    }

    /// Stop early once the loss has not improved by `min_delta` for
    /// `patience` consecutive epochs (see [`EarlyStopper`]).
    pub fn with_early_stopping(mut self, patience: usize, min_delta: f32) -> Self {
        self.early_stop = Some((patience, min_delta));
        self
    }

    /// Drive the epoch loop to completion (or early stop).
    ///
    /// Runs entirely inside a `vgod_tensor::arena::scope`, so the matrices
    /// dropped by one epoch's tape reset are recycled into the next epoch's
    /// allocations.
    pub fn run(
        &self,
        store: &mut ParamStore,
        mut forward: impl FnMut(&Tape, usize, &ParamStore) -> Var,
        mut on_epoch: impl FnMut(usize, f32, &ParamStore),
    ) -> TrainSummary {
        vgod_tensor::arena::scope(|| {
            let start = Instant::now();
            let mut opt = Adam::new(self.lr);
            let mut stopper = self.early_stop.map(|(p, d)| EarlyStopper::new(p, d));
            let tape = Tape::new();
            let mut summary = TrainSummary {
                epochs_run: 0,
                final_loss: f32::NAN,
                elapsed: Duration::ZERO,
            };
            for epoch in 1..=self.epochs {
                tape.reset();
                let loss = forward(&tape, epoch, store);
                let loss_value = loss.value().as_slice()[0];
                loss.backward_into(store);
                drop(loss);
                opt.step(store);
                summary.epochs_run = epoch;
                summary.final_loss = loss_value;
                on_epoch(epoch, loss_value, store);
                if let Some(s) = &mut stopper {
                    if s.should_stop(loss_value) {
                        break;
                    }
                }
            }
            summary.elapsed = start.elapsed();
            summary
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgod_tensor::Matrix;

    #[test]
    fn trains_quadratic_to_minimum() {
        let mut store = ParamStore::new();
        let w = store.insert(Matrix::filled(1, 1, 0.0));
        let mut epochs_seen = Vec::new();
        let summary = Trainer::new(300, 0.1).run(
            &mut store,
            |tape, _, store| {
                let wv = tape.param(store, w);
                let target = tape.constant(Matrix::filled(1, 1, 3.0));
                wv.sub(&target).square().sum_all()
            },
            |epoch, _, _| epochs_seen.push(epoch),
        );
        assert_eq!(summary.epochs_run, 300);
        assert_eq!(epochs_seen.len(), 300);
        assert_eq!(*epochs_seen.first().unwrap(), 1);
        let wv = store.value(w).as_slice()[0];
        assert!((wv - 3.0).abs() < 1e-2, "Trainer ended at {wv}");
        assert!(summary.final_loss < 1e-3);
    }

    #[test]
    fn matches_hand_rolled_loop_bitwise() {
        // The Trainer must be a pure refactor of the models' loops: same
        // forward, same Adam step, same parameter trajectory.
        let build = || {
            let mut store = ParamStore::new();
            let w = store.insert(Matrix::from_rows(&[&[0.2], &[-0.4]]));
            (store, w)
        };
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, -1.0], &[0.5, 0.5]]);
        let y = Matrix::column_vector(&[1.0, -1.0, 0.5]);

        let (mut store_a, w_a) = build();
        let mut opt = Adam::new(0.05);
        for _ in 0..40 {
            let tape = Tape::new();
            let xv = tape.constant(x.clone());
            let yv = tape.constant(y.clone());
            let wv = tape.param(&store_a, w_a);
            let loss = xv.matmul(&wv).sub(&yv).square().mean_all();
            loss.backward_into(&mut store_a);
            opt.step(&mut store_a);
        }

        let (mut store_b, w_b) = build();
        Trainer::new(40, 0.05).run(
            &mut store_b,
            |tape, _, store| {
                let xv = tape.constant(x.clone());
                let yv = tape.constant(y.clone());
                let wv = tape.param(store, w_b);
                xv.matmul(&wv).sub(&yv).square().mean_all()
            },
            |_, _, _| {},
        );

        assert_eq!(store_a.value(w_a), store_b.value(w_b));
    }

    #[test]
    fn early_stopping_halts_on_plateau() {
        let mut store = ParamStore::new();
        let w = store.insert(Matrix::filled(1, 1, 3.0));
        // Loss is already at its minimum: every epoch is a plateau epoch.
        let summary = Trainer::new(100, 0.0).with_early_stopping(5, 0.0).run(
            &mut store,
            |tape, _, store| {
                let wv = tape.param(store, w);
                let target = tape.constant(Matrix::filled(1, 1, 3.0));
                wv.sub(&target).square().sum_all()
            },
            |_, _, _| {},
        );
        assert!(summary.epochs_run < 100, "never stopped early");
    }
}
