//! First-order optimizers over a [`ParamStore`].

use vgod_autograd::ParamStore;
use vgod_tensor::{AdamStep, Matrix};

/// Shared optimizer interface: consume the gradients currently held in the
/// store, update parameter values, then zero the gradients.
pub trait Optimizer {
    /// Apply one update step and clear gradients.
    fn step(&mut self, store: &mut ParamStore);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Change the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent, optionally with momentum.
#[derive(Clone, Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// SGD with the given learning rate and no momentum.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    fn ensure_state(&mut self, store: &ParamStore) {
        while self.velocity.len() < store.len() {
            let idx = self.velocity.len();
            let (r, c) = store
                .iter()
                .nth(idx)
                .map(|(_, p)| p.value.shape())
                .expect("param exists by construction");
            self.velocity.push(Matrix::zeros(r, c));
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        self.ensure_state(store);
        for (i, (_, p)) in store.iter_mut().enumerate() {
            if self.momentum > 0.0 {
                let v = &mut self.velocity[i];
                v.scale_inplace(self.momentum);
                v.add_scaled(1.0, &p.grad);
                p.value.add_scaled(-self.lr, v);
            } else {
                p.value.add_scaled(-self.lr, &p.grad);
            }
        }
        store.zero_grads();
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// The Adam optimizer (Kingma & Ba) with bias-corrected moment estimates —
/// the optimizer used for every model in the VGOD paper.
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u32,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Adam with standard hyperparameters (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Adam with explicit betas.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32) -> Self {
        Self {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    fn ensure_state(&mut self, store: &ParamStore) {
        while self.m.len() < store.len() {
            let idx = self.m.len();
            let (r, c) = store
                .iter()
                .nth(idx)
                .map(|(_, p)| p.value.shape())
                .expect("param exists by construction");
            self.m.push(Matrix::zeros(r, c));
            self.v.push(Matrix::zeros(r, c));
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        self.ensure_state(store);
        self.t += 1;
        let step = AdamStep {
            lr: self.lr,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
            bias1: 1.0 - self.beta1.powi(self.t as i32),
            bias2: 1.0 - self.beta2.powi(self.t as i32),
        };
        for (i, (_, p)) in store.iter_mut().enumerate() {
            // One fused (vectorised and, for large parameters, parallel)
            // pass over value, both moment buffers and the gradient.
            p.value
                .fused_adam_step(&mut self.m[i], &mut self.v[i], &p.grad, &step);
        }
        store.zero_grads();
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use vgod_autograd::Tape;

    /// Minimize f(w) = (w − 3)² and check convergence.
    fn converges_to_three(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut store = ParamStore::new();
        let w = store.insert(Matrix::filled(1, 1, 0.0));
        for _ in 0..steps {
            let tape = Tape::new();
            let wv = tape.param(&store, w);
            let target = tape.constant(Matrix::filled(1, 1, 3.0));
            let loss = wv.sub(&target).square().sum_all();
            loss.backward_into(&mut store);
            opt.step(&mut store);
        }
        store.value(w).as_slice()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let w = converges_to_three(&mut opt, 100);
        assert!((w - 3.0).abs() < 1e-3, "SGD ended at {w}");
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let w = converges_to_three(&mut opt, 200);
        assert!((w - 3.0).abs() < 1e-2, "SGD+momentum ended at {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let w = converges_to_three(&mut opt, 300);
        assert!((w - 3.0).abs() < 1e-2, "Adam ended at {w}");
    }

    #[test]
    fn adam_fits_linear_regression() {
        // y = x·W* with W* fixed; Adam should recover W* from noiseless data.
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let w_star = crate::init::glorot_uniform(3, 2, &mut rng);
        let x = Matrix::from_fn(20, 3, |r, c| ((r * 3 + c) % 7) as f32 * 0.3 - 0.9);
        let y = x.matmul(&w_star);

        let mut store = ParamStore::new();
        let w = store.insert(Matrix::zeros(3, 2));
        let mut opt = Adam::new(0.05);
        let mut last_loss = f32::INFINITY;
        for _ in 0..400 {
            let tape = Tape::new();
            let xv = tape.constant(x.clone());
            let yv = tape.constant(y.clone());
            let wv = tape.param(&store, w);
            let loss = xv.matmul(&wv).sub(&yv).square().mean_all();
            last_loss = loss.value().as_slice()[0];
            loss.backward_into(&mut store);
            opt.step(&mut store);
        }
        assert!(last_loss < 1e-4, "regression loss stayed at {last_loss}");
        assert!(store.value(w).approx_eq(&w_star, 0.05));
    }

    #[test]
    fn step_clears_gradients() {
        let mut store = ParamStore::new();
        let w = store.insert(Matrix::filled(1, 1, 1.0));
        let tape = Tape::new();
        let wv = tape.param(&store, w);
        wv.square().sum_all().backward_into(&mut store);
        assert!(store.grad(w).max_abs() > 0.0);
        Adam::new(0.01).step(&mut store);
        assert_eq!(store.grad(w).max_abs(), 0.0);
    }
}
