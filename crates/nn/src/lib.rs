//! # vgod-nn
//!
//! Neural-network building blocks on top of the `vgod-autograd` engine:
//! weight initialisers, the [`Linear`] layer and [`Mlp`] stacks, loss
//! helpers, and the [`Adam`] / [`Sgd`] optimizers that consume gradients
//! accumulated in a [`vgod_autograd::ParamStore`].
//!
//! ```
//! use rand::SeedableRng;
//! use vgod_autograd::{ParamStore, Tape};
//! use vgod_nn::{Adam, Linear};
//! use vgod_tensor::Matrix;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut store = ParamStore::new();
//! let layer = Linear::new(&mut store, 4, 2, true, &mut rng);
//! let mut opt = Adam::new(1e-2);
//!
//! let x = Matrix::zeros(3, 4);
//! let tape = Tape::new();
//! let y = layer.forward(&tape, &store, &tape.constant(x));
//! assert_eq!(y.shape(), (3, 2));
//! # let _ = &mut opt;
//! ```

#![warn(missing_docs)]

mod early_stop;
mod init;
mod layers;
mod loss;
mod optim;
mod trainer;

pub use early_stop::EarlyStopper;
pub use init::{glorot_uniform, he_uniform, uniform_init};
pub use layers::{Activation, Linear, Mlp};
pub use loss::{mse_loss, row_reconstruction_errors};
pub use optim::{Adam, Optimizer, Sgd};
pub use trainer::{TrainSummary, Trainer};
