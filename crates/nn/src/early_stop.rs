//! Early stopping on a plateauing (or rising) objective.
//!
//! The paper's experimental protocol stops each *baseline* "as long as
//! their AUC score reaches its peak" (§VI-B2) — a labelled criterion that
//! an unsupervised deployment cannot use. This utility provides the
//! unsupervised analogue: stop when the training loss has not improved by
//! at least `min_delta` for `patience` consecutive epochs.

/// Loss-plateau early stopping.
#[derive(Clone, Debug)]
pub struct EarlyStopper {
    patience: usize,
    min_delta: f32,
    best: f32,
    best_epoch: usize,
    epochs_seen: usize,
}

impl EarlyStopper {
    /// Stop after `patience` epochs without an improvement of at least
    /// `min_delta`.
    pub fn new(patience: usize, min_delta: f32) -> Self {
        Self {
            patience,
            min_delta,
            best: f32::INFINITY,
            best_epoch: 0,
            epochs_seen: 0,
        }
    }

    /// Record this epoch's loss; returns `true` when training should stop.
    pub fn should_stop(&mut self, loss: f32) -> bool {
        self.epochs_seen += 1;
        if loss < self.best - self.min_delta {
            self.best = loss;
            self.best_epoch = self.epochs_seen;
        }
        self.epochs_seen - self.best_epoch >= self.patience
    }

    /// The best loss observed so far.
    pub fn best_loss(&self) -> f32 {
        self.best
    }

    /// The (1-based) epoch that achieved the best loss; 0 before any epoch.
    pub fn best_epoch(&self) -> usize {
        self.best_epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stops_on_plateau() {
        let mut es = EarlyStopper::new(3, 1e-3);
        let losses = [1.0, 0.8, 0.7, 0.7, 0.7, 0.7];
        let mut stopped_at = None;
        for (i, &l) in losses.iter().enumerate() {
            if es.should_stop(l) {
                stopped_at = Some(i + 1);
                break;
            }
        }
        // Best at epoch 3 (0.7); plateau epochs 4,5,6 → stop at epoch 6.
        assert_eq!(stopped_at, Some(6));
        assert_eq!(es.best_epoch(), 3);
        assert!((es.best_loss() - 0.7).abs() < 1e-6);
    }

    #[test]
    fn keeps_going_while_improving() {
        let mut es = EarlyStopper::new(2, 0.0);
        for epoch in 0..100 {
            let loss = 1.0 / (epoch + 1) as f32;
            assert!(
                !es.should_stop(loss),
                "stopped during steady improvement at {epoch}"
            );
        }
    }

    #[test]
    fn rising_loss_counts_as_plateau() {
        let mut es = EarlyStopper::new(2, 0.0);
        assert!(!es.should_stop(0.5));
        assert!(!es.should_stop(0.6));
        assert!(es.should_stop(0.7));
    }

    #[test]
    fn min_delta_filters_noise() {
        let mut es = EarlyStopper::new(2, 0.1);
        // Tiny improvements below min_delta do not reset patience.
        assert!(!es.should_stop(1.0));
        assert!(!es.should_stop(0.99));
        assert!(es.should_stop(0.98));
    }
}
