//! Dense layers.

use rand::Rng;
use vgod_autograd::{ParamId, ParamStore, Tape, Var};

use crate::init::glorot_uniform;

/// Elementwise activation functions usable between layers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Activation {
    /// Identity (no nonlinearity).
    Identity,
    /// Rectified linear unit.
    Relu,
    /// Leaky ReLU with the given negative slope.
    LeakyRelu(f32),
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Apply the activation to a variable.
    pub fn apply(self, x: &Var) -> Var {
        match self {
            Activation::Identity => x.clone(),
            Activation::Relu => x.relu(),
            Activation::LeakyRelu(slope) => x.leaky_relu(slope),
            Activation::Sigmoid => x.sigmoid(),
            Activation::Tanh => x.tanh(),
        }
    }
}

/// A fully-connected layer `y = xW (+ b)`.
#[derive(Clone, Debug)]
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Create a layer with Glorot-uniform weights (and zero bias when
    /// `bias` is set), registering the parameters in `store`.
    pub fn new(
        store: &mut ParamStore,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let w = store.insert(glorot_uniform(in_dim, out_dim, rng));
        let b = bias.then(|| store.insert(vgod_tensor::Matrix::zeros(1, out_dim)));
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Parameter id of the weight matrix.
    pub fn weight_id(&self) -> ParamId {
        self.w
    }

    /// Parameter id of the bias vector, if the layer has one.
    pub fn bias_id(&self) -> Option<ParamId> {
        self.b
    }

    /// Forward pass: `x · W (+ b)`.
    pub fn forward(&self, tape: &Tape, store: &ParamStore, x: &Var) -> Var {
        let w = tape.param(store, self.w);
        let y = x.matmul(&w);
        match self.b {
            Some(b) => y.add_row_broadcast(&tape.param(store, b)),
            None => y,
        }
    }
}

/// A stack of [`Linear`] layers with a shared activation between them (no
/// activation after the last layer).
#[derive(Clone, Debug)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

impl Mlp {
    /// Build an MLP through the given layer dimensions, e.g. `&[64, 32, 8]`
    /// creates two layers 64→32→8.
    ///
    /// # Panics
    /// Panics if fewer than two dimensions are given.
    pub fn new(
        store: &mut ParamStore,
        dims: &[usize],
        activation: Activation,
        bias: bool,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            dims.len() >= 2,
            "Mlp needs at least input and output dimensions"
        );
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(store, w[0], w[1], bias, rng))
            .collect();
        Self { layers, activation }
    }

    /// The layers of the stack.
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Forward pass with the configured activation between layers.
    pub fn forward(&self, tape: &Tape, store: &ParamStore, x: &Var) -> Var {
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(tape, store, &h);
            if i + 1 < self.layers.len() {
                h = self.activation.apply(&h);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use vgod_tensor::Matrix;

    #[test]
    fn linear_shapes_and_bias() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let l = Linear::new(&mut store, 3, 5, true, &mut rng);
        assert_eq!(store.len(), 2);
        assert_eq!(l.in_dim(), 3);
        assert_eq!(l.out_dim(), 5);
        let tape = Tape::new();
        let x = tape.constant(Matrix::zeros(4, 3));
        let y = l.forward(&tape, &store, &x);
        assert_eq!(y.shape(), (4, 5));
        // Zero input + zero bias ⇒ zero output.
        assert!(y.value().max_abs() == 0.0);
    }

    #[test]
    fn mlp_composes_layers() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, &[4, 8, 2], Activation::Relu, true, &mut rng);
        assert_eq!(mlp.layers().len(), 2);
        let tape = Tape::new();
        let x = tape.constant(Matrix::filled(3, 4, 0.5));
        let y = mlp.forward(&tape, &store, &x);
        assert_eq!(y.shape(), (3, 2));
    }

    #[test]
    fn gradients_reach_all_parameters() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, &[2, 3, 1], Activation::Tanh, true, &mut rng);
        let tape = Tape::new();
        let x = tape.constant(Matrix::from_rows(&[&[1.0, -1.0], &[0.5, 2.0]]));
        let loss = mlp.forward(&tape, &store, &x).square().sum_all();
        loss.backward_into(&mut store);
        for (id, p) in store.iter() {
            assert!(
                p.grad.max_abs() > 0.0 || p.value.max_abs() == 0.0,
                "parameter {id:?} received no gradient"
            );
        }
    }
}
