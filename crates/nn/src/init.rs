//! Weight initialisation schemes.

use rand::Rng;
use vgod_tensor::Matrix;

/// Uniform initialisation in `[-limit, limit]`.
pub fn uniform_init(rows: usize, cols: usize, limit: f32, rng: &mut impl Rng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-limit..=limit))
}

/// Glorot/Xavier uniform initialisation: `limit = sqrt(6 / (fan_in + fan_out))`.
///
/// The default for the linear transforms in the VGOD paper's models (it is
/// PyTorch Geometric's default for GCN/GAT weights).
pub fn glorot_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform_init(fan_in, fan_out, limit, rng)
}

/// He/Kaiming uniform initialisation: `limit = sqrt(6 / fan_in)`.
/// Preferred in front of ReLU nonlinearities.
pub fn he_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
    let limit = (6.0 / fan_in as f32).sqrt();
    uniform_init(fan_in, fan_out, limit, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn glorot_respects_limit() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let w = glorot_uniform(100, 50, &mut rng);
        let limit = (6.0f32 / 150.0).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() <= limit + 1e-6));
        // Not all identical / zero.
        assert!(w.max_abs() > limit * 0.5);
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let mut a = rand::rngs::StdRng::seed_from_u64(7);
        let mut b = rand::rngs::StdRng::seed_from_u64(7);
        assert_eq!(glorot_uniform(4, 4, &mut a), glorot_uniform(4, 4, &mut b));
    }

    #[test]
    fn he_has_wider_limit_than_glorot_for_same_fan_in() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let h = he_uniform(10, 10, &mut rng);
        let limit_glorot = (6.0f32 / 20.0).sqrt();
        // He limit is sqrt(6/10) > glorot's sqrt(6/20); sampled values may
        // exceed the glorot bound.
        assert!(h.as_slice().iter().any(|v| v.abs() > limit_glorot));
    }
}
