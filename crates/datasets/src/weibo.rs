//! The Weibo-like replica with organic, labeled outliers.
//!
//! §VI-E4 of the paper measures three properties of the real Weibo data
//! that explain VGOD's win there, and this generator plants exactly those:
//!
//! 1. **No degree signal** (Fig. 9b): outlier degrees are drawn from the
//!    inlier degree distribution.
//! 2. **Attribute diversity** (425.0 vs 11.95 total attribute variance):
//!    inliers get tight community-conditioned attributes, outliers get
//!    mutually-diverse vectors.
//! 3. **Cohesive outlier clusters in a homophilous graph** (Fig. 9a,
//!    homophily 0.75): outliers form small dense clusters — clusters of
//!    *unrelated* nodes, i.e. precisely the neighbour-inconsistency VBM's
//!    neighbour variance measures.

use rand::seq::SliceRandom;
use rand::Rng;
use vgod_graph::{community_graph, gaussian_mixture_attributes, standard_normal, AttributedGraph};
use vgod_inject::{GroundTruth, OutlierKind};

use crate::{spec, Dataset, Scale};

/// Fraction of nodes that are outliers (Table I: 868 / 8405 ≈ 10.3 %).
const OUTLIER_RATIO: f64 = 0.103;

/// Outlier cluster size range (small dense clusters, Fig. 9a). The upper
/// end must exceed the typical inlier degree, because cluster size caps an
/// outlier's degree — too-small clusters would leak an *inverse* degree
/// signal.
const CLUSTER_SIZE: (usize, usize) = (18, 44);

/// Fraction of outliers whose vectors get a heavy-tailed magnitude boost.
/// This minority drives the across-outlier attribute variance up to the
/// paper's measured contrast (425.0 vs 11.95) while leaving most outliers
/// magnitude-inconspicuous — the reason AnomalyDAE's attribute channel
/// tops out around 0.925 on the real Weibo instead of 1.0.
const OUTLIER_TAIL_FRACTION: f64 = 0.4;

/// Pareto tail exponent for the boosted minority's radii.
const OUTLIER_RADIUS_TAIL: f32 = 1.0;

/// Generate the Weibo-like graph and its outlier labels.
pub fn weibo_like(scale: Scale, rng: &mut impl Rng) -> (AttributedGraph, GroundTruth) {
    let sp = spec(Dataset::WeiboLike, scale);
    let mut g = community_graph(&sp.topology, rng);
    let n = g.num_nodes();
    let labels = g.labels().expect("generator attaches labels").to_vec();

    // Inlier attributes: tight Gaussian mixture (small total variance).
    // Centre norm must dominate the total noise norm (0.3·√64 ≈ 2.4) so
    // that communities are genuinely coherent in attribute space — the
    // property behind Fig. 9a's cohesive inlier clusters.
    let x = gaussian_mixture_attributes(&labels, sp.attr_dim, 3.2, 0.3, rng);
    // Mean inlier attribute norm — outlier magnitudes are matched to it.
    let inlier_norm_mean = x.row_norms().mean();
    g.set_attrs(x);

    // Pick outliers and group them into clusters.
    let n_outliers = ((n as f64 * OUTLIER_RATIO).round() as usize).max(CLUSTER_SIZE.0);
    let mut pool: Vec<u32> = (0..n as u32).collect();
    pool.shuffle(rng);
    let outliers: Vec<u32> = pool.into_iter().take(n_outliers).collect();

    // Inlier degree distribution to sample outlier degrees from.
    let is_outlier: Vec<bool> = {
        let mut m = vec![false; n];
        for &u in &outliers {
            m[u as usize] = true;
        }
        m
    };
    let inlier_degrees: Vec<usize> = (0..n as u32)
        .filter(|&u| !is_outlier[u as usize])
        .map(|u| g.degree(u))
        .collect();

    let mut truth = GroundTruth::new(n);
    let n_comm_base = labels.iter().map(|&c| c as usize + 1).max().unwrap_or(0) as u32;
    let mut new_labels = labels;
    let mut cluster_id = n_comm_base;

    // Partition the outliers into clusters up front: edge construction
    // must run after *every* outlier has been detached, or cross-cluster
    // edges added early would be destroyed by a later detach.
    let mut clusters: Vec<&[u32]> = Vec::new();
    let mut idx = 0usize;
    while idx < outliers.len() {
        let remaining = outliers.len() - idx;
        let mut size = rng
            .gen_range(CLUSTER_SIZE.0..=CLUSTER_SIZE.1)
            .min(remaining);
        // Never leave a single orphan outlier (a cluster needs ≥ 2 nodes
        // to carry any edges); absorb it into this cluster instead.
        if remaining - size == 1 {
            size += 1;
        }
        clusters.push(&outliers[idx..idx + size]);
        idx += size;
    }

    // Phase 1: detach, relabel and re-attribute every outlier.
    for cluster in &clusters {
        for &u in *cluster {
            // Replace the outlier's organic edges with intra-cluster edges
            // whose count follows the inlier degree distribution.
            g.detach_node(u);
            truth.mark(u, OutlierKind::Structural);
            // Outlier clusters behave like their own (mixed-content)
            // community for homophily purposes.
            new_labels[u as usize] = cluster_id;
            // Mutually-diverse attributes: a uniformly random *direction*
            // (in 64 dimensions, nearly orthogonal to every community
            // centre — direction-anomalous, which is what a row-normalised
            // reconstruction model keys on), with the *magnitude* of the
            // bulk matched to the inlier norm distribution so attribute
            // L2-norm alone cannot separate most outliers. A heavy-tailed
            // minority gets a magnitude boost, which is what drives the
            // across-outlier attribute variance up to the paper's measured
            // 425.0-vs-11.95 contrast.
            let d = g.num_attrs();
            let mut row = vec![0.0f32; d];
            for v in &mut row {
                *v = standard_normal(rng);
            }
            let norm: f32 = row.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
            let mut radius = (inlier_norm_mean + 0.4 * standard_normal(rng))
                .clamp(0.6 * inlier_norm_mean, 1.5 * inlier_norm_mean);
            if rng.gen_bool(OUTLIER_TAIL_FRACTION) {
                let u01: f32 = rng.gen_range(0.001f32..1.0);
                radius *= u01.powf(-1.0 / OUTLIER_RADIUS_TAIL).min(25.0);
            }
            for v in &mut row {
                *v *= radius / norm;
            }
            g.attrs_mut().row_mut(u as usize).copy_from_slice(&row);
        }
        cluster_id += 1;
    }

    // Phase 2: wire the clusters.
    for cluster in &clusters {
        for &u in *cluster {
            // The degree target follows the inlier degree distribution so
            // that degree carries no signal *in either direction* (Fig. 9b).
            // Intra-cluster edges come first; degrees beyond the cluster's
            // capacity spill over to outliers of *other* clusters — Fig. 9a
            // shows exactly such interconnected outlier clusters.
            let target = inlier_degrees[rng.gen_range(0..inlier_degrees.len())].max(2);
            let intra_cap = (cluster.len() - 1).max(1);
            let mut guard = 0usize;
            while g.degree(u) < target.min(intra_cap) && guard < target * 30 + 50 {
                guard += 1;
                let v = cluster[rng.gen_range(0..cluster.len())];
                g.add_edge(u, v);
            }
            guard = 0;
            while g.degree(u) < target && guard < target * 30 + 50 {
                guard += 1;
                let v = outliers[rng.gen_range(0..outliers.len())];
                if v != u {
                    g.add_edge(u, v);
                }
            }
        }
    }
    g.set_labels(new_labels);
    (g, truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgod_graph::{adjusted_homophily, attribute_variance, degree_stats, seeded_rng};

    fn build() -> (AttributedGraph, GroundTruth) {
        weibo_like(Scale::Tiny, &mut seeded_rng(0))
    }

    #[test]
    fn outlier_ratio_matches_table_one() {
        let (_, truth) = build();
        let ratio = truth.outlier_ratio();
        assert!((ratio - 0.103).abs() < 0.02, "outlier ratio {ratio}");
    }

    #[test]
    fn outlier_attribute_variance_dwarfs_inliers() {
        // The contrast is driven by a heavy-tailed minority; at tiny scale
        // (~35 outliers) single draws are noisy, so average over seeds.
        let mut ratios = Vec::new();
        for seed in 0..4u64 {
            let (g, truth) = weibo_like(Scale::Tiny, &mut seeded_rng(seed));
            let out = attribute_variance(&g, &truth.structural_nodes());
            let inl = attribute_variance(&g, &truth.normal_nodes());
            ratios.push(out / inl.max(1e-6));
        }
        let mean = ratios.iter().sum::<f32>() / ratios.len() as f32;
        assert!(
            mean > 5.0,
            "outlier/inlier variance ratio should be large (paper: ~35×); got {ratios:?}"
        );
    }

    #[test]
    fn outlier_degrees_match_inlier_distribution() {
        let (g, truth) = build();
        let out_stats = degree_stats(&g, Some(&truth.structural_nodes()));
        let inl_stats = degree_stats(&g, Some(&truth.normal_nodes()));
        // Means within 3×: no exploitable degree signal (Fig. 9b). Exact
        // match is impossible because cluster size caps the degree.
        let ratio = inl_stats.mean / out_stats.mean.max(0.5);
        assert!(
            (0.33..3.0).contains(&ratio),
            "degree means {out_stats:?} vs {inl_stats:?}"
        );
    }

    #[test]
    fn graph_is_homophilous() {
        let (g, _) = build();
        let h = adjusted_homophily(&g);
        assert!(h > 0.5, "adjusted homophily {h} (paper: 0.75)");
    }

    #[test]
    fn outliers_form_cohesive_clusters() {
        let (g, truth) = build();
        // Every outlier neighbours only other outliers (its own cluster
        // plus spill-over links to other clusters, as in Fig. 9a); the
        // majority of its edges stay within its own cluster.
        let labels = g.labels().unwrap();
        let mut intra = 0usize;
        let mut total = 0usize;
        for &u in &truth.structural_nodes() {
            assert!(g.degree(u) >= 1, "outlier {u} is isolated");
            for &v in g.neighbors(u) {
                assert_ne!(truth.kind(v), OutlierKind::Normal);
                total += 1;
                if labels[v as usize] == labels[u as usize] {
                    intra += 1;
                }
            }
        }
        // A solid share of outlier edges stays within a cluster; the rest
        // interconnects clusters (both visible in Fig. 9a). Either way the
        // neighbourhoods are all-outlier and attribute-diverse, which is
        // the property VBM keys on.
        assert!(
            intra as f32 / total as f32 > 0.25,
            "intra-cluster edge share too low: {intra}/{total}"
        );
    }

    #[test]
    fn invariants_hold() {
        let (g, truth) = build();
        assert!(g.check_invariants());
        assert_eq!(truth.len(), g.num_nodes());
        assert!(truth.contextual_nodes().is_empty());
    }
}
