//! # vgod-datasets
//!
//! Synthetic, statistically-calibrated replicas of the five benchmark
//! datasets of the VGOD paper (Table I): Cora, Citeseer, PubMed, Flickr and
//! Weibo.
//!
//! The real datasets require network downloads that this reproduction
//! cannot assume; instead each replica is generated from a planted-partition
//! model whose node count, edge density, community count and attribute model
//! are calibrated to the original's published statistics (see DESIGN.md §1
//! for the substitution argument). Citation-style replicas use sparse binary
//! bag-of-words attributes with node-varying word counts (so attribute
//! L2-norms vary — the property behind the paper's contextual-leakage
//! analysis); social-style replicas use dense attributes and heavy-tailed
//! degrees.
//!
//! The Weibo replica is special: it carries *labeled* outliers built to the
//! paper's own measurements of the real data (§VI-E4/Fig. 9) — outliers
//! form small, dense, attribute-diverse clusters whose degree distribution
//! matches the inliers', inside a homophilous (adjusted homophily ≈ 0.75)
//! graph.
//!
//! Everything is deterministic given the caller's RNG, and every replica is
//! available at four scales so tests, benches and full reproductions can
//! pick their cost.

#![warn(missing_docs)]

mod spec;
mod weibo;

pub use spec::{injection_params, spec, ReplicaSpec};
pub use weibo::weibo_like;

use rand::Rng;
use vgod_graph::{
    binary_topic_attributes, community_graph, gaussian_mixture_attributes, AttributedGraph,
};
use vgod_inject::GroundTruth;

/// The five benchmark datasets of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Cora-like citation network (2 706 nodes, 7 classes, binary attrs).
    CoraLike,
    /// Citeseer-like citation network (3 327 nodes, 6 classes, binary attrs).
    CiteseerLike,
    /// PubMed-like citation network (19 717 nodes, 3 classes).
    PubmedLike,
    /// Flickr-like social network (7 575 nodes, dense, heavy-tailed degrees).
    FlickrLike,
    /// Weibo-like social network with *labeled* outliers (8 405 nodes).
    WeiboLike,
}

impl Dataset {
    /// All five datasets, in the paper's column order.
    pub const ALL: [Dataset; 5] = [
        Dataset::CoraLike,
        Dataset::CiteseerLike,
        Dataset::PubmedLike,
        Dataset::FlickrLike,
        Dataset::WeiboLike,
    ];

    /// The four datasets used with injected outliers (all but Weibo).
    pub const INJECTED: [Dataset; 4] = [
        Dataset::CoraLike,
        Dataset::CiteseerLike,
        Dataset::PubmedLike,
        Dataset::FlickrLike,
    ];
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Dataset::CoraLike => "cora",
            Dataset::CiteseerLike => "citeseer",
            Dataset::PubmedLike => "pubmed",
            Dataset::FlickrLike => "flickr",
            Dataset::WeiboLike => "weibo",
        })
    }
}

/// Generation scale: trades fidelity to Table I against CPU cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Scale {
    /// ~4 % of the paper's node counts — unit/integration tests.
    Tiny,
    /// ~10 % — default for the benchmark harness.
    Small,
    /// ~25 % — overnight-style runs.
    Medium,
    /// Full Table I node counts (attribute dims capped at 300).
    Paper,
}

impl Scale {
    /// Parse from the `VGOD_SCALE` environment variable convention.
    pub fn from_env_str(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "paper" | "full" => Some(Scale::Paper),
            _ => None,
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Paper => "paper",
        })
    }
}

/// A generated replica: the graph, plus ground-truth labels when the
/// dataset carries organic (non-injected) outliers (only Weibo).
#[derive(Clone, Debug)]
pub struct Replica {
    /// The attributed network (community labels attached).
    pub graph: AttributedGraph,
    /// Ground truth for datasets with labeled outliers (Weibo-like).
    pub labeled_truth: Option<GroundTruth>,
}

/// Generate a replica of `ds` at `scale`.
pub fn replica(ds: Dataset, scale: Scale, rng: &mut impl Rng) -> Replica {
    if ds == Dataset::WeiboLike {
        let (graph, truth) = weibo_like(scale, rng);
        return Replica {
            graph,
            labeled_truth: Some(truth),
        };
    }
    let sp = spec(ds, scale);
    let mut g = community_graph(&sp.topology, rng);
    let labels = g.labels().expect("generator attaches labels").to_vec();
    let x = match sp.binary_attrs {
        Some(words_range) => binary_topic_attributes(&labels, sp.attr_dim, words_range, 0.82, rng),
        None => gaussian_mixture_attributes(&labels, sp.attr_dim, 4.0, 0.8, rng),
    };
    g.set_attrs(x);
    Replica {
        graph: g,
        labeled_truth: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgod_graph::{edge_homophily, seeded_rng};

    #[test]
    fn injected_replicas_match_spec_statistics() {
        let mut rng = seeded_rng(0);
        for ds in Dataset::INJECTED {
            let sp = spec(ds, Scale::Small);
            let r = replica(ds, Scale::Small, &mut rng);
            let g = &r.graph;
            assert_eq!(g.num_nodes(), sp.topology.n, "{ds} node count");
            assert_eq!(g.num_attrs(), sp.attr_dim, "{ds} attr dim");
            let avg = g.avg_degree();
            assert!(
                (avg - sp.topology.avg_degree).abs() / sp.topology.avg_degree < 0.25,
                "{ds}: avg degree {avg} vs target {}",
                sp.topology.avg_degree
            );
            assert!(edge_homophily(g) > 0.6, "{ds} should be homophilous");
            assert!(r.labeled_truth.is_none());
            assert!(g.check_invariants());
        }
    }

    #[test]
    fn citation_replicas_have_binary_attrs_with_varying_norms() {
        let mut rng = seeded_rng(1);
        let r = replica(Dataset::CoraLike, Scale::Tiny, &mut rng);
        let x = r.graph.attrs();
        assert!(x.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
        let norms = x.row_sq_norms();
        let min = norms
            .as_slice()
            .iter()
            .cloned()
            .fold(f32::INFINITY, f32::min);
        let max = norms.as_slice().iter().cloned().fold(0.0f32, f32::max);
        assert!(max > min + 2.0, "word counts should vary: {min}..{max}");
    }

    #[test]
    fn flickr_replica_is_dense_and_heavy_tailed() {
        let mut rng = seeded_rng(2);
        let r = replica(Dataset::FlickrLike, Scale::Tiny, &mut rng);
        let g = &r.graph;
        assert!(g.avg_degree() > 8.0, "flickr avg degree {}", g.avg_degree());
        let max_deg = (0..g.num_nodes() as u32)
            .map(|u| g.degree(u))
            .max()
            .unwrap();
        assert!(max_deg as f32 > 3.0 * g.avg_degree());
    }

    #[test]
    fn scales_are_ordered() {
        let mut rng = seeded_rng(3);
        let tiny = replica(Dataset::CoraLike, Scale::Tiny, &mut rng)
            .graph
            .num_nodes();
        let small = replica(Dataset::CoraLike, Scale::Small, &mut rng)
            .graph
            .num_nodes();
        assert!(tiny < small);
        assert_eq!(Scale::from_env_str("PAPER"), Some(Scale::Paper));
        assert_eq!(Scale::from_env_str("bogus"), None);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = replica(Dataset::CiteseerLike, Scale::Tiny, &mut seeded_rng(9));
        let b = replica(Dataset::CiteseerLike, Scale::Tiny, &mut seeded_rng(9));
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        assert_eq!(a.graph.attrs(), b.graph.attrs());
    }
}
