//! Per-dataset generation specs calibrated to Table I.

use vgod_graph::CommunityGraphConfig;
use vgod_inject::{ContextualParams, DistanceMetric, StructuralParams};

use crate::{Dataset, Scale};

/// Everything needed to generate one replica.
#[derive(Clone, Debug)]
pub struct ReplicaSpec {
    /// Topology generator configuration.
    pub topology: CommunityGraphConfig,
    /// Attribute dimensionality (capped below the originals' for CPU cost;
    /// see DESIGN.md §1).
    pub attr_dim: usize,
    /// `Some(words_range)` for sparse binary bag-of-words attributes
    /// (citation networks); `None` for dense Gaussian-mixture attributes
    /// (social networks).
    pub binary_attrs: Option<(usize, usize)>,
}

/// Node-count multiplier for each scale.
fn node_factor(scale: Scale) -> f64 {
    match scale {
        Scale::Tiny => 0.04,
        Scale::Small => 0.10,
        Scale::Medium => 0.25,
        Scale::Paper => 1.0,
    }
}

/// Attribute-dimension cap for each scale.
fn attr_cap(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 32,
        Scale::Small => 64,
        Scale::Medium => 128,
        Scale::Paper => 300,
    }
}

fn scaled_nodes(paper_n: usize, scale: Scale) -> usize {
    ((paper_n as f64 * node_factor(scale)).round() as usize).max(120)
}

/// The generation spec for `ds` at `scale`. Table I reference values:
///
/// | dataset  | nodes  | edges   | attrs  | avg deg | communities |
/// |----------|--------|---------|--------|---------|-------------|
/// | Cora     | 2 706  | 5 429   | 1 433  | ~4.0*   | 7           |
/// | Citeseer | 3 327  | 4 732   | 3 703  | ~2.8*   | 6           |
/// | PubMed   | 19 717 | 44 338  | 500    | ~4.5*   | 3           |
/// | Flickr   | 7 575  | 239 738 | 12 407 | ~63*    | 9           |
/// | Weibo    | 8 405  | 407 963 | 64     | ~97*    | (generated) |
///
/// *as `2|E|/|V|`; Table I's `#avg_deg` column reports `|E|/|V|`.
pub fn spec(ds: Dataset, scale: Scale) -> ReplicaSpec {
    let cap = attr_cap(scale);
    match ds {
        Dataset::CoraLike => {
            let n = scaled_nodes(2706, scale);
            ReplicaSpec {
                topology: CommunityGraphConfig::homogeneous(n, 7, 4.0, 0.90),
                attr_dim: cap.min(1433),
                binary_attrs: Some((cap / 8 + 2, cap / 3 + 4)),
            }
        }
        Dataset::CiteseerLike => {
            let n = scaled_nodes(3327, scale);
            ReplicaSpec {
                topology: CommunityGraphConfig::homogeneous(n, 6, 2.8, 0.90),
                attr_dim: cap.min(3703),
                binary_attrs: Some((cap / 8 + 2, cap / 3 + 4)),
            }
        }
        Dataset::PubmedLike => {
            let n = scaled_nodes(19_717, scale);
            ReplicaSpec {
                topology: CommunityGraphConfig::homogeneous(n, 3, 4.5, 0.88),
                attr_dim: cap.min(500),
                binary_attrs: Some((cap / 8 + 2, cap / 3 + 4)),
            }
        }
        Dataset::FlickrLike => {
            let n = scaled_nodes(7575, scale);
            // Cap density on tiny graphs so the generator can place edges.
            let avg_degree = 63.0f32.min(n as f32 / 8.0);
            let mut topology = CommunityGraphConfig::homogeneous(n, 9, avg_degree, 0.85);
            topology.degree_exponent = Some(2.3);
            ReplicaSpec {
                topology,
                attr_dim: cap.min(12_407),
                binary_attrs: None,
            }
        }
        Dataset::WeiboLike => {
            let n = scaled_nodes(8405, scale);
            let avg_degree = 97.0f32.min(n as f32 / 8.0);
            let mut topology = CommunityGraphConfig::homogeneous(n, 8, avg_degree, 0.88);
            topology.degree_exponent = Some(2.1);
            // Weibo's real attribute dimension is only 64 — keep it.
            ReplicaSpec {
                topology,
                attr_dim: 64,
                binary_attrs: None,
            }
        }
    }
}

/// The paper's injection parameters for the UNOD experiment (§VI-B1):
/// `q = 15`, `k = 50`, and `p ∈ {5, 5, 20, 15}` for Cora, Citeseer, PubMed
/// and Flickr. `p` scales with the node count so smaller replicas keep the
/// paper's outlier *ratio*; `q` and `k` are capped for tiny graphs.
pub fn injection_params(ds: Dataset, scale: Scale) -> (StructuralParams, ContextualParams) {
    let paper_p = match ds {
        Dataset::CoraLike | Dataset::CiteseerLike => 5,
        Dataset::PubmedLike => 20,
        Dataset::FlickrLike => 15,
        Dataset::WeiboLike => 0, // Weibo uses organic labels, never injected.
    };
    let factor = node_factor(scale);
    let p = ((paper_p as f64 * factor).round() as usize).max(1);
    let q = match scale {
        Scale::Tiny => 8,
        _ => 15,
    };
    let structural = StructuralParams {
        num_cliques: p,
        clique_size: q,
    };
    let contextual = ContextualParams {
        count: p * q,
        candidates: 50,
        metric: DistanceMetric::Euclidean,
    };
    (structural, contextual)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_table_one_nodes() {
        assert_eq!(spec(Dataset::CoraLike, Scale::Paper).topology.n, 2706);
        assert_eq!(spec(Dataset::CiteseerLike, Scale::Paper).topology.n, 3327);
        assert_eq!(spec(Dataset::PubmedLike, Scale::Paper).topology.n, 19_717);
        assert_eq!(spec(Dataset::FlickrLike, Scale::Paper).topology.n, 7575);
        assert_eq!(spec(Dataset::WeiboLike, Scale::Paper).topology.n, 8405);
    }

    #[test]
    fn injection_keeps_outlier_ratio_across_scales() {
        // Paper: Cora has 150 outliers / 2706 nodes ≈ 5.5 % (half structural).
        let (s, c) = injection_params(Dataset::CoraLike, Scale::Paper);
        assert_eq!(s.num_cliques * s.clique_size, 75);
        assert_eq!(c.count, 75);
        let (s_small, _) = injection_params(Dataset::CoraLike, Scale::Small);
        let n_small = spec(Dataset::CoraLike, Scale::Small).topology.n;
        let ratio = (2 * s_small.num_cliques * s_small.clique_size) as f32 / n_small as f32;
        assert!((0.02..0.12).contains(&ratio), "outlier ratio {ratio}");
    }

    #[test]
    fn weibo_keeps_its_real_attribute_dimension() {
        assert_eq!(spec(Dataset::WeiboLike, Scale::Paper).attr_dim, 64);
        assert_eq!(spec(Dataset::WeiboLike, Scale::Tiny).attr_dim, 64);
    }
}
