//! End-to-end `--shards`: forked worker processes, coordinator front, and
//! byte-identical merged output, all driven through the real binary.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn vgod() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vgod"))
}

fn run(args: &[&str]) {
    let out = vgod().args(args).output().expect("spawn vgod");
    assert!(
        out.status.success(),
        "vgod {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("vgod_shard_e2e_{}_{name}", std::process::id()))
}

/// Parse a `node score` file into the score column.
fn read_scores(path: &Path) -> Vec<f32> {
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("{}: {e}", path.display()))
        .lines()
        .map(|l| l.split_whitespace().nth(1).unwrap().parse::<f32>().unwrap())
        .collect()
}

#[test]
fn detect_sharded_is_byte_identical_to_single_process() {
    let store = tmp("det.vgodstore");
    let s_ref = tmp("det_ref.tsv");
    let s_one = tmp("det_one.tsv");
    let s_two = tmp("det_two.tsv");
    run(&[
        "store",
        "--synth-nodes",
        "300",
        "--seed",
        "9",
        "--out",
        store.to_str().unwrap(),
    ]);
    // Sliced mode: threshold below n forces the sampled range path.
    let base = [
        "detect",
        "--in",
        store.to_str().unwrap(),
        "--model",
        "degnorm",
        "--out-of-core",
        "--threshold",
        "50",
        "--batch",
        "64",
    ];
    let with = |scores: &Path, extra: &[&str]| {
        let mut args: Vec<&str> = base.to_vec();
        args.extend_from_slice(&["--scores", scores.to_str().unwrap()]);
        args.extend_from_slice(extra);
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&owned.iter().map(String::as_str).collect::<Vec<_>>());
    };
    with(&s_ref, &[]);
    with(&s_one, &["--shards", "1"]);
    with(&s_two, &["--shards", "2"]);
    let reference = std::fs::read(&s_ref).unwrap();
    assert_eq!(
        reference,
        std::fs::read(&s_one).unwrap(),
        "--shards 1 must reproduce the single-process score file byte-for-byte"
    );
    assert_eq!(
        reference,
        std::fs::read(&s_two).unwrap(),
        "--shards 2 must reproduce the single-process score file byte-for-byte"
    );
    for p in [&store, &s_ref, &s_one, &s_two] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn detect_sharded_handles_text_graphs_full_copy() {
    let graph = tmp("txt_graph.txt");
    let s_ref = tmp("txt_ref.tsv");
    let s_two = tmp("txt_two.tsv");
    run(&[
        "generate",
        "--dataset",
        "cora",
        "--scale",
        "tiny",
        "--seed",
        "12",
        "--out",
        graph.to_str().unwrap(),
    ]);
    // Default threshold far above n: the partition falls back to one
    // shared full copy and every worker takes the full-graph path.
    run(&[
        "detect",
        "--in",
        graph.to_str().unwrap(),
        "--scores",
        s_ref.to_str().unwrap(),
        "--model",
        "degnorm",
    ]);
    run(&[
        "detect",
        "--in",
        graph.to_str().unwrap(),
        "--scores",
        s_two.to_str().unwrap(),
        "--model",
        "degnorm",
        "--shards",
        "2",
    ]);
    assert_eq!(
        std::fs::read(&s_ref).unwrap(),
        std::fs::read(&s_two).unwrap()
    );
    for p in [&graph, &s_ref, &s_two] {
        let _ = std::fs::remove_file(p);
    }
}

/// Kill the server process on panic so a failing assert never leaks it.
struct ServerGuard(Child);

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn serve_sharded_round_trip_via_binary() {
    let store = tmp("srv.vgodstore");
    let models = tmp("srv_models");
    let part = tmp("srv_partition");
    let addr_file = tmp("srv_addr.txt");
    let s_ref = tmp("srv_ref.tsv");
    let _ = std::fs::remove_dir_all(&models);
    let _ = std::fs::remove_dir_all(&part);
    let _ = std::fs::remove_file(&addr_file);
    std::fs::create_dir_all(&models).unwrap();
    run(&[
        "store",
        "--synth-nodes",
        "240",
        "--seed",
        "11",
        "--out",
        store.to_str().unwrap(),
    ]);
    let ckpt = models.join("degnorm.ckpt");
    // The serve path has no --batch flag, so the reference detect must use
    // the same default batch size (no --batch) for byte-identity.
    run(&[
        "detect",
        "--in",
        store.to_str().unwrap(),
        "--scores",
        s_ref.to_str().unwrap(),
        "--model",
        "degnorm",
        "--out-of-core",
        "--threshold",
        "50",
        "--save-model",
        ckpt.to_str().unwrap(),
    ]);

    let child = vgod()
        .args([
            "serve",
            "--models",
            models.to_str().unwrap(),
            "--in",
            store.to_str().unwrap(),
            "--shards",
            "2",
            "--threshold",
            "50",
            "--partition-dir",
            part.to_str().unwrap(),
            "--port",
            "0",
            "--addr-file",
            addr_file.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .spawn()
        .unwrap();
    let mut guard = ServerGuard(child);

    let deadline = Instant::now() + Duration::from_secs(60);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&addr_file) {
            if let Ok(addr) = text.trim().parse::<SocketAddr>() {
                break addr;
            }
        }
        assert!(
            Instant::now() < deadline,
            "coordinator did not write its address"
        );
        std::thread::sleep(Duration::from_millis(20));
    };

    let (status, _) = vgod_serve::http::get(addr, "/healthz").unwrap();
    assert_eq!(status, 200);

    // Merged scores from the sharded server equal the offline detect run.
    let (status, body) = vgod_serve::http::post(addr, "/score", r#"{"model":"degnorm"}"#).unwrap();
    assert_eq!(status, 200, "{body}");
    let parsed = vgod_serve::json::Json::parse(&body).unwrap();
    let served: Vec<f32> = parsed
        .get("scores")
        .and_then(|s| s.as_arr())
        .expect("scores array")
        .iter()
        .map(|v| v.as_f64().unwrap() as f32)
        .collect();
    let reference = read_scores(&s_ref);
    assert_eq!(
        served.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
        reference.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
        "served sharded scores must match offline detect bit-for-bit"
    );

    // Coordinator metrics carry the partition and per-shard sections.
    let (status, metrics) = vgod_serve::http::get(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    assert!(metrics.contains("\"partition\""), "{metrics}");
    assert!(metrics.contains("\"halo_bytes\""), "{metrics}");

    // store --info on the kept partition directory prints the manifest.
    let out = vgod()
        .args(["store", "--info", part.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("2 shard(s)"), "{text}");
    assert!(text.contains("sliced"), "{text}");

    let (status, _) = vgod_serve::http::post(addr, "/shutdown", "").unwrap();
    assert_eq!(status, 200);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if guard.0.try_wait().unwrap().is_some() {
            break;
        }
        assert!(Instant::now() < deadline, "server did not exit on shutdown");
        std::thread::sleep(Duration::from_millis(20));
    }

    let _ = std::fs::remove_dir_all(&models);
    let _ = std::fs::remove_dir_all(&part);
    for p in [&store, &addr_file, &s_ref] {
        let _ = std::fs::remove_file(p);
    }
}
