//! Subcommand implementations.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use vgod::{MiniBatchConfig, Vbm, Vgod, VgodConfig};
use vgod_baselines::{
    AnomalyDae, Cola, Conad, DeepConfig, Deg, DegNorm, Dominant, Done, L2Norm, Radar,
    RandomDetector,
};
use vgod_datasets::{replica, Dataset, Scale};
use vgod_eval::{auc, average_precision, precision_at_k, recall_at_k, OutlierDetector};
use vgod_graph::{
    adjusted_homophily, degree_stats, edge_homophily, load_graph, parse_mem_budget,
    partition_store, save_graph, seeded_rng, synth_store, AttributedGraph, CachePolicy,
    FrozenGraph, GraphMutation, GraphStore, HaloManifest, OocStore, OverlayGraph,
    PartitionConfig, PartitionManifest,
    PartitionMode, SamplingConfig, StoreOptions, SynthStoreConfig, DEFAULT_ATTR_BLOCK_NODES,
    DEFAULT_EDGE_BLOCK_ENTRIES,
};
use vgod_inject::{
    inject_community_replacement, inject_contextual, inject_standard, inject_structural,
    ContextualParams, DistanceMetric, GroundTruth, OutlierKind, StructuralParams,
};
use vgod_serve::{
    AnyDetector, OocServeConfig, RegistryConfig, ServeConfig, ShardSpec, StreamConfig,
    WorkerConfig,
};

use crate::args::Args;
use crate::files;

type CmdResult = Result<(), String>;

fn parse_dataset(s: &str) -> Result<Dataset, String> {
    match s.to_ascii_lowercase().as_str() {
        "cora" => Ok(Dataset::CoraLike),
        "citeseer" => Ok(Dataset::CiteseerLike),
        "pubmed" => Ok(Dataset::PubmedLike),
        "flickr" => Ok(Dataset::FlickrLike),
        "weibo" => Ok(Dataset::WeiboLike),
        other => Err(format!("unknown dataset {other:?}")),
    }
}

fn load(path: &str) -> Result<AttributedGraph, String> {
    load_graph(path).map_err(|e| format!("{path}: {e}"))
}

/// `vgod generate`
pub fn generate(args: &Args) -> CmdResult {
    let dataset = parse_dataset(args.required("dataset").map_err(|e| e.to_string())?)?;
    let scale = args
        .get("scale")
        .map(|s| Scale::from_env_str(s).ok_or_else(|| format!("unknown scale {s:?}")))
        .transpose()?
        .unwrap_or(Scale::Small);
    let seed: u64 = args.get_parsed_or("seed", 42).map_err(|e| e.to_string())?;
    let out = args.required("out").map_err(|e| e.to_string())?;

    let mut rng = seeded_rng(seed);
    let r = replica(dataset, scale, &mut rng);
    save_graph(&r.graph, out).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "wrote {out}: {} nodes, {} edges, {} attrs",
        r.graph.num_nodes(),
        r.graph.num_edges(),
        r.graph.num_attrs()
    );
    if let Some(truth) = r.labeled_truth {
        let path = args
            .get("truth")
            .ok_or("weibo carries labeled outliers: pass --truth FILE to keep them")?;
        let mut w = BufWriter::new(File::create(path).map_err(|e| format!("{path}: {e}"))?);
        files::write_truth(&truth, &mut w).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "wrote {path}: {} labeled outliers",
            truth.structural_nodes().len()
        );
    }
    Ok(())
}

/// `vgod inject`
pub fn inject(args: &Args) -> CmdResult {
    let input = args.required("in").map_err(|e| e.to_string())?;
    let out = args.required("out").map_err(|e| e.to_string())?;
    let truth_path = args.required("truth").map_err(|e| e.to_string())?;
    let seed: u64 = args.get_parsed_or("seed", 1).map_err(|e| e.to_string())?;
    let mode = args.get("mode").unwrap_or("standard");

    let mut g = load(input)?;
    let mut rng = seeded_rng(seed);

    let p: usize = args.get_parsed_or("p", 5).map_err(|e| e.to_string())?;
    let q: usize = args.get_parsed_or("q", 15).map_err(|e| e.to_string())?;
    let k: usize = args.get_parsed_or("k", 50).map_err(|e| e.to_string())?;
    let fraction: f32 = args
        .get_parsed_or("fraction", 0.1)
        .map_err(|e| e.to_string())?;
    let metric = match args.get("metric").unwrap_or("euclidean") {
        "euclidean" => DistanceMetric::Euclidean,
        "cosine" => DistanceMetric::Cosine,
        other => return Err(format!("unknown metric {other:?}")),
    };
    let sp = StructuralParams {
        num_cliques: p,
        clique_size: q,
    };
    let cp = ContextualParams {
        count: p * q,
        candidates: k,
        metric,
    };

    let truth = match mode {
        "standard" => inject_standard(&mut g, &sp, &cp, &mut rng),
        "structural" => {
            let mut truth = GroundTruth::new(g.num_nodes());
            inject_structural(&mut g, &mut truth, &sp, &mut rng);
            truth
        }
        "contextual" => {
            let mut truth = GroundTruth::new(g.num_nodes());
            inject_contextual(&mut g, &mut truth, &cp, &mut rng);
            truth
        }
        "replacement" => {
            let mut truth = GroundTruth::new(g.num_nodes());
            inject_community_replacement(&mut g, &mut truth, fraction, &mut rng);
            truth
        }
        other => return Err(format!("unknown injection mode {other:?}")),
    };

    save_graph(&g, out).map_err(|e| format!("{out}: {e}"))?;
    let mut w = BufWriter::new(File::create(truth_path).map_err(|e| format!("{truth_path}: {e}"))?);
    files::write_truth(&truth, &mut w).map_err(|e| format!("{truth_path}: {e}"))?;
    println!(
        "wrote {out} (+{truth_path}): {} structural, {} contextual outliers",
        truth.structural_nodes().len(),
        truth.contextual_nodes().len()
    );
    Ok(())
}

/// `vgod detect`
pub fn detect(args: &Args) -> CmdResult {
    let input = args.required("in").map_err(|e| e.to_string())?;
    let scores_path = args.required("scores").map_err(|e| e.to_string())?;
    let model = args.get("model").unwrap_or("vgod").to_ascii_lowercase();
    let seed: u64 = args.get_parsed_or("seed", 0).map_err(|e| e.to_string())?;
    let hidden: usize = args
        .get_parsed_or("hidden", 64)
        .map_err(|e| e.to_string())?;
    let epochs: usize = args
        .get_parsed_or("epochs", 50)
        .map_err(|e| e.to_string())?;
    let lr: f32 = args.get_parsed_or("lr", 0.005).map_err(|e| e.to_string())?;
    let self_loops: bool = args
        .get_parsed_or("self-loops", true)
        .map_err(|e| e.to_string())?;
    let batch: usize = args.get_parsed_or("batch", 0).map_err(|e| e.to_string())?;

    let deep = DeepConfig {
        hidden,
        epochs,
        lr,
        seed,
    };
    let mut vgod_cfg = VgodConfig::default();
    vgod_cfg.vbm.hidden_dim = hidden;
    vgod_cfg.vbm.lr = lr;
    vgod_cfg.vbm.self_loops = self_loops;
    vgod_cfg.vbm.seed = seed;
    vgod_cfg.arm.hidden_dim = hidden;
    vgod_cfg.arm.lr = lr;
    vgod_cfg.arm.epochs = epochs.max(1);
    vgod_cfg.arm.seed = seed.wrapping_add(1);

    let save_model = args.get("save-model");
    let load_model = args.get("load-model");

    if args.get("shards").is_some() {
        return detect_sharded(
            args,
            input,
            scores_path,
            &model,
            deep,
            vgod_cfg,
            seed,
            batch,
            save_model,
            load_model,
        );
    }

    if args.has("out-of-core") {
        return detect_out_of_core(
            args,
            input,
            scores_path,
            &model,
            deep,
            vgod_cfg,
            seed,
            batch,
            save_model,
            load_model,
        );
    }

    let g = load(input)?;
    // Either resurrect any checkpoint (the magic line says which detector it
    // holds) or build + fit the requested model fresh.
    let detector = match load_model {
        Some(path) => load_checked(args, path)?,
        None => {
            let mut det = fresh_detector(&model, deep, vgod_cfg, seed)?;
            let minibatch = MiniBatchConfig {
                batch_size: batch,
                neighbor_cap: 16,
            };
            // vbm/arm support explicit mini-batch training (their concrete
            // types expose it); everything else fits through the trait.
            match &mut det {
                AnyDetector::Vbm(m) if batch > 0 => m.fit_minibatch(&g, &minibatch),
                AnyDetector::Arm(m) if batch > 0 => m.fit_minibatch(&g, &minibatch),
                other => OutlierDetector::fit(other, &g),
            }
            det
        }
    };
    if let Some(path) = save_model {
        detector.save_file(Path::new(path))?;
        println!("saved {} checkpoint to {path}", detector.kind());
    }
    let scores = detector.score(&g).combined;
    write_scores_file(&scores, scores_path, detector.kind())
}

/// An untrained detector of the requested kind.
fn fresh_detector(
    model: &str,
    deep: DeepConfig,
    vgod_cfg: VgodConfig,
    seed: u64,
) -> Result<AnyDetector, String> {
    Ok(match model {
        "vgod" => AnyDetector::Vgod(Vgod::new(vgod_cfg)),
        "vbm" => AnyDetector::Vbm(Vbm::new(vgod_cfg.vbm)),
        "arm" => AnyDetector::Arm(vgod::Arm::new(vgod_cfg.arm)),
        "dominant" => AnyDetector::Dominant(Dominant::new(deep)),
        "anomalydae" => AnyDetector::AnomalyDae(AnomalyDae::new(deep)),
        "done" => AnyDetector::Done(Done::new(deep)),
        "cola" => AnyDetector::Cola(Cola::new(deep)),
        "conad" => AnyDetector::Conad(Conad::new(deep)),
        "radar" => AnyDetector::Radar(Radar::new(deep)),
        "degnorm" => AnyDetector::DegNorm(DegNorm),
        "deg" => AnyDetector::Deg(Deg),
        "l2norm" => AnyDetector::L2Norm(L2Norm),
        "random" => AnyDetector::Random(RandomDetector::new(seed)),
        other => return Err(format!("unknown model {other:?}")),
    })
}

/// Load a checkpoint, rejecting a kind mismatch against an explicit
/// `--model`.
fn load_checked(args: &Args, path: &str) -> Result<AnyDetector, String> {
    let det = AnyDetector::load_file(Path::new(path))?;
    if let Some(requested) = args.get("model") {
        if det.kind() != requested.to_ascii_lowercase() {
            return Err(format!(
                "{path} holds a {} checkpoint, not {requested}",
                det.kind()
            ));
        }
    }
    Ok(det)
}

fn write_scores_file(scores: &[f32], scores_path: &str, kind: &str) -> CmdResult {
    let mut w =
        BufWriter::new(File::create(scores_path).map_err(|e| format!("{scores_path}: {e}"))?);
    files::write_scores(scores, &mut w).map_err(|e| format!("{scores_path}: {e}"))?;
    println!("wrote {scores_path}: {} scores from {kind}", scores.len());
    Ok(())
}

/// The neighbour-sampling schedule from `detect`/`store` flags.
fn sampling_config(args: &Args, batch: usize) -> Result<SamplingConfig, String> {
    Ok(SamplingConfig {
        full_graph_threshold: args
            .get_parsed_or("threshold", 20_000)
            .map_err(|e| e.to_string())?,
        batch_size: if batch > 0 { batch } else { 1024 },
        fanout: args.get_parsed_or("fanout", 8).map_err(|e| e.to_string())?,
        hops: args.get_parsed_or("hops", 2).map_err(|e| e.to_string())?,
        train_seeds: args
            .get_parsed_or("train-seeds", 2048)
            .map_err(|e| e.to_string())?,
        seed: args
            .get_parsed_or("sample-seed", 0)
            .map_err(|e| e.to_string())?,
        ooc_threads: args
            .get_parsed_or("ooc-threads", 0)
            .map_err(|e| e.to_string())?,
        prefetch: args.has("prefetch"),
    })
}

/// The block cache policy from `--cache-policy` (default: segmented LRU).
fn cache_policy(args: &Args) -> Result<CachePolicy, String> {
    args.get("cache-policy")
        .map_or(Ok(CachePolicy::default()), CachePolicy::parse)
}

/// `vgod detect --out-of-core`: train and score against a demand-paged
/// on-disk store under an explicit memory budget, never materialising the
/// full graph.
#[allow(clippy::too_many_arguments)]
fn detect_out_of_core(
    args: &Args,
    input: &str,
    scores_path: &str,
    model: &str,
    deep: DeepConfig,
    vgod_cfg: VgodConfig,
    seed: u64,
    batch: usize,
    save_model: Option<&str>,
    load_model: Option<&str>,
) -> CmdResult {
    let budget = parse_mem_budget(args.get("mem-budget").unwrap_or("256M"))?;
    let opts = StoreOptions {
        budget,
        policy: cache_policy(args)?,
        shards: 0,
    };
    let store = OocStore::open_with(Path::new(input), opts).map_err(|e| format!("{input}: {e}"))?;
    let scfg = sampling_config(args, batch)?;
    let verbose = args.has("verbose");
    if verbose {
        eprintln!(
            "store {input}: {} nodes, {} edges, {} attrs; budget {} bytes \
             ({} cache, {} shards), sampling threshold {} (batch {}, fanout {}, \
             hops {}, train seeds {}), {} score thread(s), prefetch {}",
            store.num_nodes(),
            store.num_edges(),
            store.num_attrs(),
            store.budget(),
            store.policy().name(),
            store.shard_count(),
            scfg.full_graph_threshold,
            scfg.batch_size,
            scfg.fanout,
            scfg.hops,
            scfg.train_seeds,
            scfg.score_threads(),
            if scfg.prefetch { "on" } else { "off" },
        );
    }
    let detector = match load_model {
        Some(path) => load_checked(args, path)?,
        None => {
            let mut det = fresh_detector(model, deep, vgod_cfg, seed)?;
            det.fit_store(&store, &scfg);
            det
        }
    };
    if let Some(path) = save_model {
        detector.save_file(Path::new(path))?;
        println!("saved {} checkpoint to {path}", detector.kind());
    }
    let scores = detector.score_store(&store, &scfg).combined;
    write_scores_file(&scores, scores_path, detector.kind())?;
    if verbose {
        let st = store.stats();
        eprintln!(
            "store stats: {} resident blocks / {} resident bytes (budget {}), \
             {} bytes read, {} evictions, {} hits / {} misses ({:.1}% hit rate)",
            st.resident_blocks,
            st.resident_bytes,
            st.budget_bytes,
            st.bytes_read,
            st.evictions,
            st.hits,
            st.misses,
            100.0 * st.hit_rate(),
        );
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Sharded scoring: partition, spawn one worker process per shard, scatter.

/// `--shards N`, validated.
fn shard_count(args: &Args) -> Result<usize, String> {
    let shards: usize = args.get_parsed_or("shards", 1).map_err(|e| e.to_string())?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    Ok(shards)
}

/// Partition `input` (a text graph or a `.vgodstore` file) into `dir`.
fn partition_input(
    input: &str,
    dir: &Path,
    shards: usize,
    sampling: SamplingConfig,
    budget: usize,
) -> Result<PartitionManifest, String> {
    let cfg = PartitionConfig::new(shards, sampling);
    let manifest = if input.ends_with(".vgodstore") {
        let store = OocStore::open_with(Path::new(input), StoreOptions::new(budget))
            .map_err(|e| format!("{input}: {e}"))?;
        partition_store(&store, dir, &cfg)?
    } else {
        let g = load(input)?;
        partition_store(&g, dir, &cfg)?
    };
    let mode = match manifest.mode {
        PartitionMode::FullCopy => "full-copy",
        PartitionMode::Sliced => "sliced",
    };
    println!(
        "partitioned {input}: {} nodes / {} edges into {shards} {mode} shard(s) \
         ({} ghosts, {} cross edges, {} halo bytes) under {}",
        manifest.num_nodes,
        manifest.num_edges,
        manifest.total_ghosts(),
        manifest.total_cross_edges(),
        manifest.total_halo_bytes(),
        dir.display()
    );
    Ok(manifest)
}

/// A spawned shard worker process. Dropping the guard kills the process,
/// so an error anywhere in coordinator startup never leaks workers.
struct ChildGuard {
    child: Child,
    shard: usize,
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        // After a graceful shutdown the process has already exited and
        // both calls are harmless no-ops.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Give cleanly shut-down workers a moment to exit on their own before
/// the guards' drop kills whatever is left.
fn reap_workers(guards: &mut [ChildGuard]) {
    let deadline = Instant::now() + Duration::from_secs(5);
    for g in guards.iter_mut() {
        while Instant::now() < deadline {
            if matches!(g.child.try_wait(), Ok(Some(_))) {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

/// Fork one `vgod shard-worker` process per shard of `manifest` and wait
/// for each to report its ephemeral address through an addr file.
fn spawn_shard_workers(
    partition_dir: &Path,
    models_dir: &Path,
    manifest: &PartitionManifest,
    budget_flag: &str,
) -> Result<(Vec<ChildGuard>, Vec<ShardSpec>), String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut guards = Vec::new();
    let mut addr_files = Vec::new();
    for meta in &manifest.shards {
        let addr_file = partition_dir.join(format!("worker-{}.addr", meta.index));
        let _ = std::fs::remove_file(&addr_file);
        let child = Command::new(&exe)
            .arg("shard-worker")
            .arg("--partition")
            .arg(partition_dir)
            .arg("--shard")
            .arg(meta.index.to_string())
            .arg("--models")
            .arg(models_dir)
            .arg("--port")
            .arg("0")
            .arg("--mem-budget")
            .arg(budget_flag)
            .arg("--addr-file")
            .arg(&addr_file)
            .stdout(Stdio::null())
            .spawn()
            .map_err(|e| format!("spawning shard worker {}: {e}", meta.index))?;
        guards.push(ChildGuard {
            child,
            shard: meta.index,
        });
        addr_files.push(addr_file);
    }
    let mut specs = Vec::new();
    for (guard, addr_file) in guards.iter_mut().zip(&addr_files) {
        let deadline = Instant::now() + Duration::from_secs(30);
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(addr_file) {
                if let Ok(addr) = text.trim().parse::<SocketAddr>() {
                    break addr;
                }
            }
            if let Ok(Some(status)) = guard.child.try_wait() {
                return Err(format!(
                    "shard worker {} exited during startup: {status}",
                    guard.shard
                ));
            }
            if Instant::now() >= deadline {
                return Err(format!(
                    "shard worker {} did not report an address within 30s",
                    guard.shard
                ));
            }
            std::thread::sleep(Duration::from_millis(10));
        };
        specs.push(ShardSpec {
            addr,
            meta: manifest.shards[guard.shard].clone(),
        });
    }
    Ok((guards, specs))
}

/// `vgod shard-worker` (internal): one shard's scoring process, forked by
/// `serve --shards` / `detect --shards`. Serves its slice until
/// `POST /shutdown`.
pub fn shard_worker(args: &Args) -> CmdResult {
    let partition = args.required("partition").map_err(|e| e.to_string())?;
    let shard: usize = args.get_parsed_or("shard", 0).map_err(|e| e.to_string())?;
    let models = args.required("models").map_err(|e| e.to_string())?;
    let host = args.get("host").unwrap_or("127.0.0.1");
    let port: u16 = args.get_parsed_or("port", 0).map_err(|e| e.to_string())?;
    let budget = parse_mem_budget(args.get("mem-budget").unwrap_or("256M"))?;
    let handle = vgod_serve::run_shard_worker(&WorkerConfig {
        partition_dir: PathBuf::from(partition),
        shard,
        models_dir: PathBuf::from(models),
        bind: format!("{host}:{port}"),
        budget,
    })?;
    if let Some(path) = args.get("addr-file") {
        std::fs::write(path, handle.addr().to_string()).map_err(|e| format!("{path}: {e}"))?;
    }
    eprintln!("shard worker {shard} serving on {}", handle.addr());
    handle.join();
    Ok(())
}

/// `vgod detect --shards N`: fit single-process (training stays local —
/// the distributed layer is scatter-gather *scoring*), publish the
/// checkpoint, partition the graph, fork the workers, and gather merged
/// scores through the coordinator. Output is byte-identical to the
/// single-process score file.
#[allow(clippy::too_many_arguments)]
fn detect_sharded(
    args: &Args,
    input: &str,
    scores_path: &str,
    model: &str,
    deep: DeepConfig,
    vgod_cfg: VgodConfig,
    seed: u64,
    batch: usize,
    save_model: Option<&str>,
    load_model: Option<&str>,
) -> CmdResult {
    let shards = shard_count(args)?;
    let scfg = sampling_config(args, batch)?;
    let budget_flag = args.get("mem-budget").unwrap_or("256M");
    let budget = parse_mem_budget(budget_flag)?;

    let detector = match load_model {
        Some(path) => load_checked(args, path)?,
        None if args.has("out-of-core") => {
            let store = OocStore::open_with(Path::new(input), StoreOptions::new(budget))
                .map_err(|e| format!("{input}: {e}"))?;
            let mut det = fresh_detector(model, deep, vgod_cfg, seed)?;
            det.fit_store(&store, &scfg);
            det
        }
        None => {
            let g = load(input)?;
            let mut det = fresh_detector(model, deep, vgod_cfg, seed)?;
            let minibatch = MiniBatchConfig {
                batch_size: batch,
                neighbor_cap: 16,
            };
            match &mut det {
                AnyDetector::Vbm(m) if batch > 0 => m.fit_minibatch(&g, &minibatch),
                AnyDetector::Arm(m) if batch > 0 => m.fit_minibatch(&g, &minibatch),
                other => OutlierDetector::fit(other, &g),
            }
            det
        }
    };
    if let Some(path) = save_model {
        detector.save_file(Path::new(path))?;
        println!("saved {} checkpoint to {path}", detector.kind());
    }

    let work = std::env::temp_dir().join(format!(
        "vgod_detect_shards_{}_{}",
        std::process::id(),
        detector.kind()
    ));
    let _ = std::fs::remove_dir_all(&work);
    let models_dir = work.join("models");
    let partition_dir = work.join("partition");
    std::fs::create_dir_all(&models_dir).map_err(|e| format!("{}: {e}", models_dir.display()))?;
    std::fs::create_dir_all(&partition_dir)
        .map_err(|e| format!("{}: {e}", partition_dir.display()))?;

    let result = (|| -> Result<Vec<f32>, String> {
        detector.save_file(&models_dir.join(format!("{}.ckpt", detector.kind())))?;
        let manifest = partition_input(input, &partition_dir, shards, scfg, budget)?;
        let (mut guards, specs) =
            spawn_shard_workers(&partition_dir, &models_dir, &manifest, budget_flag)?;
        let handle = vgod_serve::serve_sharded(manifest, specs, &models_dir, "127.0.0.1:0", 64)?;
        let body = format!("{{\"model\":\"{}\"}}", detector.kind());
        let scatter = vgod_serve::http::post(handle.addr(), "/score", &body)
            .map_err(|e| format!("scatter: {e}"));
        handle.shutdown();
        handle.join();
        reap_workers(&mut guards);
        drop(guards);
        let (status, text) = scatter?;
        if status != 200 {
            return Err(format!("sharded scoring failed ({status}): {text}"));
        }
        let parsed =
            vgod_serve::json::Json::parse(&text).map_err(|e| format!("bad /score reply: {e}"))?;
        let arr = parsed
            .get("scores")
            .and_then(|s| s.as_arr())
            .ok_or("missing \"scores\" in /score reply")?;
        // f32 scores survive the wire exactly: the worker renders the
        // shortest round-trip decimal and f64 parsing re-reads it bit-for-bit.
        arr.iter()
            .map(|v| {
                v.as_f64()
                    .map(|f| f as f32)
                    .ok_or_else(|| "non-numeric score in /score reply".to_string())
            })
            .collect()
    })();
    let _ = std::fs::remove_dir_all(&work);
    let scores = result?;
    write_scores_file(&scores, scores_path, detector.kind())
}

/// `vgod serve --shards N`: partition, fork one worker per shard, and run
/// the coordinator front in this process.
fn serve_shards_cmd(
    args: &Args,
    models_dir: &str,
    input: &str,
    host: &str,
    port: u16,
    queue: usize,
) -> CmdResult {
    let shards = shard_count(args)?;
    let scfg = sampling_config(args, 0)?;
    let budget_flag = args.get("mem-budget").unwrap_or("256M");
    let budget = parse_mem_budget(budget_flag)?;
    let (dir, ephemeral) = match args.get("partition-dir") {
        Some(d) => (PathBuf::from(d), false),
        None => (
            std::env::temp_dir().join(format!("vgod_shards_{}", std::process::id())),
            true,
        ),
    };
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;

    let result = (|| -> CmdResult {
        let manifest = partition_input(input, &dir, shards, scfg, budget)?;
        let (mut guards, specs) =
            spawn_shard_workers(&dir, Path::new(models_dir), &manifest, budget_flag)?;
        let handle = vgod_serve::serve_sharded(
            manifest,
            specs,
            Path::new(models_dir),
            &format!("{host}:{port}"),
            queue,
        )?;
        let models = handle.models();
        println!(
            "serving {} model(s) on http://{} across {shards} shard worker(s) — \
             POST /shutdown to stop",
            models.len(),
            handle.addr(),
        );
        for m in &models {
            println!("  {} v{} ({})", m.name, m.version, m.kind);
        }
        if let Some(path) = args.get("addr-file") {
            std::fs::write(path, handle.addr().to_string()).map_err(|e| format!("{path}: {e}"))?;
        }
        handle.join();
        reap_workers(&mut guards);
        drop(guards);
        println!("server stopped");
        Ok(())
    })();
    if ephemeral {
        let _ = std::fs::remove_dir_all(&dir);
    }
    result
}

/// `vgod store`: build, convert, or inspect on-disk graph stores.
pub fn store(args: &Args) -> CmdResult {
    if let Some(path) = args.get("info") {
        // A directory is a partition: print its manifest metadata instead
        // of opening a single store file.
        if Path::new(path).is_dir() {
            let m = PartitionManifest::load(Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
            let mode = match m.mode {
                PartitionMode::FullCopy => "full-copy",
                PartitionMode::Sliced => "sliced",
            };
            println!("partition   : {mode}, {} shard(s)", m.shards.len());
            println!("nodes       : {}", m.num_nodes);
            println!("edges       : {}", m.num_edges);
            println!("attributes  : {}", m.num_attrs);
            let s = &m.sampling;
            println!(
                "sampling    : threshold={} batch={} fanout={} hops={} train_seeds={} seed={}",
                s.full_graph_threshold, s.batch_size, s.fanout, s.hops, s.train_seeds, s.seed
            );
            println!("ghosts      : {}", m.total_ghosts());
            println!("cross edges : {}", m.total_cross_edges());
            println!("halo bytes  : {}", m.total_halo_bytes());
            for sh in &m.shards {
                println!(
                    "shard {:<5} : [{}, {}) closure={} ghosts={} cross_edges={} halo_bytes={}",
                    sh.index, sh.lo, sh.hi, sh.closure, sh.ghosts, sh.cross_edges, sh.halo_bytes
                );
                // Sliced partitions also carry binary VGODHAL1 halo
                // manifests; report what is actually on disk, not just the
                // text-manifest summary above.
                let halo = PartitionManifest::halo_path(Path::new(path), sh.index);
                if halo.is_file() {
                    let hm = HaloManifest::load(&halo)
                        .map_err(|e| format!("{}: {e}", halo.display()))?;
                    let disk = std::fs::metadata(&halo).map(|md| md.len()).unwrap_or(0);
                    println!(
                        "  halo file : {} — {} ghost id(s), {} exchange byte(s), {} on disk",
                        halo.file_name().unwrap_or_default().to_string_lossy(),
                        hm.ghosts.len(),
                        hm.halo_bytes,
                        disk
                    );
                }
            }
            return Ok(());
        }
        let budget = parse_mem_budget(args.get("mem-budget").unwrap_or("64M"))?;
        let opts = StoreOptions {
            budget,
            policy: cache_policy(args)?,
            shards: 0,
        };
        let s = OocStore::open_with(Path::new(path), opts).map_err(|e| format!("{path}: {e}"))?;
        println!("nodes       : {}", s.num_nodes());
        println!("edges       : {}", s.num_edges());
        println!("attributes  : {}", s.num_attrs());
        println!(
            "attr block  : {} rows ({} blocks)",
            s.attr_block_nodes(),
            s.num_attr_blocks()
        );
        println!(
            "edge block  : {} entries ({} blocks)",
            s.edge_block_entries(),
            s.num_edge_blocks()
        );
        println!("labels      : {}", s.labels_vec().is_some());
        println!(
            "cache       : {} policy, {} shards",
            s.policy().name(),
            s.shard_count()
        );
        println!(
            "cache budget: {} bytes of {} total (indptr keeps the rest resident)",
            s.cache_budget(),
            s.budget()
        );
        let st = s.stats();
        println!(
            "resident    : {} bytes of {} budget",
            st.resident_bytes, st.budget_bytes
        );
        return Ok(());
    }
    let out = args.required("out").map_err(|e| e.to_string())?;
    if args.get("synth-nodes").is_some() {
        let nodes: usize = args
            .get_parsed_or("synth-nodes", 0)
            .map_err(|e| e.to_string())?;
        let seed: u64 = args.get_parsed_or("seed", 0).map_err(|e| e.to_string())?;
        let cfg = SynthStoreConfig::scaled(nodes, seed);
        let truth = synth_store(
            Path::new(out),
            &cfg,
            DEFAULT_ATTR_BLOCK_NODES,
            DEFAULT_EDGE_BLOCK_ENTRIES,
        )
        .map_err(|e| format!("{out}: {e}"))?;
        println!(
            "wrote {out}: {} nodes, ~{} edges, {} attrs; {} structural + {} contextual outliers",
            nodes,
            nodes * cfg.avg_degree / 2,
            cfg.attrs,
            truth.structural.len(),
            truth.contextual.len()
        );
        if let Some(truth_path) = args.get("truth") {
            let mut gt = GroundTruth::new(nodes);
            for &u in &truth.structural {
                gt.mark(u, OutlierKind::Structural);
            }
            for &u in &truth.contextual {
                gt.mark(u, OutlierKind::Contextual);
            }
            let mut w =
                BufWriter::new(File::create(truth_path).map_err(|e| format!("{truth_path}: {e}"))?);
            files::write_truth(&gt, &mut w).map_err(|e| format!("{truth_path}: {e}"))?;
            println!("wrote {truth_path}");
        }
        return Ok(());
    }
    if let Some(input) = args.get("in") {
        let g = load(input)?;
        OocStore::create_from_graph(
            &g,
            Path::new(out),
            DEFAULT_ATTR_BLOCK_NODES,
            DEFAULT_EDGE_BLOCK_ENTRIES,
        )
        .map_err(|e| format!("{out}: {e}"))?;
        println!(
            "wrote {out}: {} nodes, {} edges, {} attrs",
            g.num_nodes(),
            g.num_edges(),
            g.num_attrs()
        );
        return Ok(());
    }
    Err("store needs --info FILE, --synth-nodes N, or --in FILE (see help)".to_string())
}

/// `vgod serve`
pub fn serve(args: &Args) -> CmdResult {
    let models_dir = args.required("models").map_err(|e| e.to_string())?;
    let input = args.required("in").map_err(|e| e.to_string())?;
    let host = args.get("host").unwrap_or("127.0.0.1");
    let port: u16 = args
        .get_parsed_or("port", 7878)
        .map_err(|e| e.to_string())?;
    let max_batch: usize = args
        .get_parsed_or("max-batch", 32)
        .map_err(|e| e.to_string())?;
    let max_wait_us: u64 = args
        .get_parsed_or("max-wait-us", 2000)
        .map_err(|e| e.to_string())?;
    let queue: usize = args
        .get_parsed_or("queue", 1024)
        .map_err(|e| e.to_string())?;
    let replicas: usize = args
        .get_parsed_or("replicas", 0)
        .map_err(|e| e.to_string())?;
    let reload_ms: u64 = args
        .get_parsed_or("reload-ms", 500)
        .map_err(|e| e.to_string())?;
    if args.has("streaming") {
        if args.get("shards").is_some() || args.has("out-of-core") {
            return Err("--streaming cannot be combined with --shards or --out-of-core".to_string());
        }
        let compact_bytes = parse_mem_budget(args.get("compact-bytes").unwrap_or("4M"))?;
        let queue_capacity: usize = args
            .get_parsed_or("update-queue", 256)
            .map_err(|e| e.to_string())?;
        let handle = vgod_serve::serve_streaming(
            Path::new(models_dir),
            Path::new(input),
            &format!("{host}:{port}"),
            StreamConfig {
                compact_bytes,
                queue_capacity: queue_capacity.max(1),
            },
        )?;
        let models = handle.models();
        println!(
            "streaming {} model(s) on http://{} — POST /graph/update to mutate, /shutdown to stop",
            models.len(),
            handle.addr()
        );
        for m in &models {
            println!("  {} v{} ({})", m.name, m.version, m.kind);
        }
        if let Some(path) = args.get("addr-file") {
            std::fs::write(path, handle.addr().to_string())
                .map_err(|e| format!("{path}: {e}"))?;
        }
        handle.join();
        println!("server stopped");
        return Ok(());
    }
    if args.get("shards").is_some() {
        return serve_shards_cmd(args, models_dir, input, host, port, queue.max(1));
    }
    let out_of_core = if args.has("out-of-core") {
        let budget = parse_mem_budget(args.get("mem-budget").unwrap_or("256M"))?;
        Some(OocServeConfig {
            budget,
            policy: cache_policy(args)?,
            sampling: sampling_config(args, 0)?,
        })
    } else {
        None
    };

    let cfg = ServeConfig {
        max_batch: max_batch.max(1),
        max_wait: Duration::from_micros(max_wait_us),
        queue_capacity: queue.max(1),
        replicas,
        registry: RegistryConfig {
            reload_poll: Duration::from_millis(reload_ms.max(1)),
        },
        out_of_core,
    };
    let handle = vgod_serve::serve(
        Path::new(models_dir),
        Path::new(input),
        &format!("{host}:{port}"),
        cfg,
    )?;
    let models = handle.models();
    println!(
        "serving {} model(s) on http://{} with {} replica(s) — POST /shutdown to stop",
        models.len(),
        handle.addr(),
        handle.replicas()
    );
    for m in &models {
        println!("  {} v{} ({})", m.name, m.version, m.kind);
    }
    // Scripts (and the CI smoke test) read the resolved address from here
    // when they bind port 0.
    if let Some(path) = args.get("addr-file") {
        std::fs::write(path, handle.addr().to_string()).map_err(|e| format!("{path}: {e}"))?;
    }
    handle.join();
    println!("server stopped");
    Ok(())
}

/// One random mutation against an `n`-node graph with `d` attributes.
/// `label_hi` is `Some(max_label)` for labelled graphs so appended nodes
/// carry a valid community label.
fn random_mutation(
    n: u32,
    d: usize,
    label_hi: Option<u32>,
    rng: &mut impl rand::Rng,
) -> GraphMutation {
    match rng.gen_range(0..9) {
        // Mostly edge churn — that is what the delta path is built for.
        0..=3 => {
            let u = rng.gen_range(0..n);
            let v = (u + rng.gen_range(1..n)) % n;
            GraphMutation::AddEdge { u, v }
        }
        4 | 5 => GraphMutation::RemoveEdge {
            u: rng.gen_range(0..n),
            v: rng.gen_range(0..n),
        },
        6 => GraphMutation::SetAttrs {
            node: rng.gen_range(0..n),
            attrs: (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        },
        7 => GraphMutation::AddNode {
            attrs: (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
            label: label_hi.map(|hi| rng.gen_range(0..=hi)),
        },
        _ => GraphMutation::RemoveNode {
            node: rng.gen_range(0..n),
        },
    }
}

/// Render one mutation in the `POST /graph/update` wire format.
fn mutation_json(op: &GraphMutation) -> String {
    fn attrs_json(attrs: &[f32]) -> String {
        let vals: Vec<String> = attrs.iter().map(|a| a.to_string()).collect();
        format!("[{}]", vals.join(","))
    }
    match op {
        GraphMutation::AddEdge { u, v } => format!("{{\"op\":\"add_edge\",\"u\":{u},\"v\":{v}}}"),
        GraphMutation::RemoveEdge { u, v } => {
            format!("{{\"op\":\"remove_edge\",\"u\":{u},\"v\":{v}}}")
        }
        GraphMutation::AddNode { attrs, label } => match label {
            Some(l) => format!(
                "{{\"op\":\"add_node\",\"attrs\":{},\"label\":{l}}}",
                attrs_json(attrs)
            ),
            None => format!("{{\"op\":\"add_node\",\"attrs\":{}}}", attrs_json(attrs)),
        },
        GraphMutation::RemoveNode { node } => format!("{{\"op\":\"remove_node\",\"node\":{node}}}"),
        GraphMutation::SetAttrs { node, attrs } => format!(
            "{{\"op\":\"set_attrs\",\"node\":{node},\"attrs\":{}}}",
            attrs_json(attrs)
        ),
    }
}

/// `vgod stream-gen` — write a JSONL mutation log plus the graph the log
/// produces, by applying every batch to the same overlay a streaming
/// server would use. Scoring the `--final` graph offline therefore gives
/// the exact scores a server that replayed `--out` must serve.
pub fn stream_gen(args: &Args) -> CmdResult {
    use std::io::Write;

    let input = args.required("in").map_err(|e| e.to_string())?;
    let out = args.required("out").map_err(|e| e.to_string())?;
    let final_path = args.required("final").map_err(|e| e.to_string())?;
    let batches: usize = args
        .get_parsed_or("batches", 20)
        .map_err(|e| e.to_string())?;
    let ops_per_batch: usize = args.get_parsed_or("ops", 8).map_err(|e| e.to_string())?;
    let seed: u64 = args.get_parsed_or("seed", 7).map_err(|e| e.to_string())?;
    if batches == 0 || ops_per_batch == 0 {
        return Err("--batches and --ops must be at least 1".to_string());
    }

    let g = load(input)?;
    if g.num_nodes() < 3 {
        return Err("stream-gen needs a graph with at least 3 nodes".to_string());
    }
    let d = g.num_attrs();
    let label_hi = g.labels().map(|l| l.iter().copied().max().unwrap_or(0));
    let mut rng = seeded_rng(seed);
    let mut overlay = OverlayGraph::new(std::sync::Arc::new(FrozenGraph::from_store(&g)));

    let mut log = BufWriter::new(File::create(out).map_err(|e| format!("{out}: {e}"))?);
    let mut applied_total = 0usize;
    for _ in 0..batches {
        // Ops are generated against the pre-batch node count, so every id
        // they reference is valid no matter how the batch interleaves.
        let n = GraphStore::num_nodes(&overlay) as u32;
        let ops: Vec<GraphMutation> = (0..ops_per_batch)
            .map(|_| random_mutation(n, d, label_hi, &mut rng))
            .collect();
        let effect = overlay.apply_batch(&ops)?;
        applied_total += effect.applied;
        let rendered: Vec<String> = ops.iter().map(mutation_json).collect();
        writeln!(log, "{{\"ops\":[{}]}}", rendered.join(","))
            .map_err(|e| format!("{out}: {e}"))?;
    }
    log.flush().map_err(|e| format!("{out}: {e}"))?;

    let final_g = overlay.materialize();
    save_graph(&final_g, final_path).map_err(|e| format!("{final_path}: {e}"))?;
    println!(
        "wrote {out}: {batches} batch(es) × {ops_per_batch} op(s), {applied_total} applied"
    );
    println!(
        "wrote {final_path}: {} nodes, {} edges after replay",
        final_g.num_nodes(),
        final_g.num_edges()
    );
    Ok(())
}

/// Pull the integer value of `"key":N` out of a flat JSON reply.
fn json_uint_field(body: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let i = body.find(&pat)? + pat.len();
    let rest = &body[i..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// `vgod stream-replay` — POST a mutation log to a running streaming
/// server, one batch per request, then optionally fetch a model's served
/// scores into a score file (same `node score` format as `detect`, and the
/// server renders floats exactly like offline score files — so the two are
/// byte-comparable).
pub fn stream_replay(args: &Args) -> CmdResult {
    use std::io::{BufRead, Write};

    let log_path = args.required("log").map_err(|e| e.to_string())?;
    let addr_str = args.required("addr").map_err(|e| e.to_string())?;
    let addr: SocketAddr = addr_str
        .parse()
        .map_err(|e| format!("{addr_str}: {e}"))?;

    let reader = BufReader::new(File::open(log_path).map_err(|e| format!("{log_path}: {e}"))?);
    let started = Instant::now();
    let mut batches = 0usize;
    let mut applied = 0u64;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("{log_path} line {}: {e}", lineno + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        let (status, body) = vgod_serve::http::post(addr, "/graph/update", &line)?;
        if status != 200 {
            return Err(format!(
                "{log_path} line {}: server answered {status}: {body}",
                lineno + 1
            ));
        }
        batches += 1;
        applied += json_uint_field(&body, "applied").unwrap_or(0);
    }
    let elapsed = started.elapsed();
    println!(
        "replayed {batches} batch(es) ({applied} op(s) applied) in {:.1}ms",
        elapsed.as_secs_f64() * 1e3
    );

    if let Some(model) = args.get("model") {
        let (status, body) =
            vgod_serve::http::post(addr, "/score", &format!("{{\"model\":\"{model}\"}}"))?;
        if status != 200 {
            return Err(format!("/score {model}: server answered {status}: {body}"));
        }
        let version = json_uint_field(&body, "version").unwrap_or(0);
        let tag = "\"scores\":[";
        let start = body
            .find(tag)
            .ok_or_else(|| format!("/score {model}: malformed reply"))?
            + tag.len();
        let end = body[start..]
            .find(']')
            .ok_or_else(|| format!("/score {model}: malformed reply"))?
            + start;
        let raw = &body[start..end];
        let count = if raw.is_empty() {
            0
        } else {
            raw.split(',').count()
        };
        println!("served {model} v{version}: {count} score(s)");
        if let Some(scores_out) = args.get("scores-out") {
            let mut w = BufWriter::new(
                File::create(scores_out).map_err(|e| format!("{scores_out}: {e}"))?,
            );
            if !raw.is_empty() {
                // Write the server's literal float tokens: no re-parse, no
                // re-format, so the file is byte-identical to what
                // `detect --scores` writes for the same values.
                for (u, tok) in raw.split(',').enumerate() {
                    writeln!(w, "{u} {tok}").map_err(|e| format!("{scores_out}: {e}"))?;
                }
            }
            w.flush().map_err(|e| format!("{scores_out}: {e}"))?;
            println!("wrote {scores_out}");
        }
    }
    Ok(())
}

/// `vgod eval`
pub fn eval(args: &Args) -> CmdResult {
    let scores_path = args.required("scores").map_err(|e| e.to_string())?;
    let truth_path = args.required("truth").map_err(|e| e.to_string())?;

    let mut r = BufReader::new(File::open(scores_path).map_err(|e| format!("{scores_path}: {e}"))?);
    let scores = files::read_scores(&mut r)?;
    let mut r = BufReader::new(File::open(truth_path).map_err(|e| format!("{truth_path}: {e}"))?);
    let truth = files::read_truth(&mut r)?;
    if truth.len() != scores.len() {
        return Err(format!(
            "score/truth size mismatch: {} scores vs {} nodes",
            scores.len(),
            truth.len()
        ));
    }
    let mask = truth.outlier_mask();
    let n_out = mask.iter().filter(|&&o| o).count();
    let at: usize = args
        .get_parsed_or("at", n_out.max(1))
        .map_err(|e| e.to_string())?;

    println!("nodes: {}, outliers: {n_out}", scores.len());
    println!("AUC               = {:.4}", auc(&scores, &mask));
    println!(
        "average precision = {:.4}",
        average_precision(&scores, &mask)
    );
    println!(
        "precision@{at:<5}    = {:.4}",
        precision_at_k(&scores, &mask, at)
    );
    println!(
        "recall@{at:<5}       = {:.4}",
        recall_at_k(&scores, &mask, at)
    );
    let s_mask = truth.structural_mask();
    let c_mask = truth.contextual_mask();
    if s_mask.iter().any(|&m| m) && c_mask.iter().any(|&m| m) {
        let a_s = vgod_eval::auc_subset(&scores, &s_mask);
        let a_c = vgod_eval::auc_subset(&scores, &c_mask);
        println!("AUC structural    = {a_s:.4}");
        println!("AUC contextual    = {a_c:.4}");
        println!("AucGap            = {:.4}", vgod_eval::auc_gap(a_s, a_c));
    }
    Ok(())
}

/// `vgod stats`
pub fn stats(args: &Args) -> CmdResult {
    let input = args.required("in").map_err(|e| e.to_string())?;
    let g = load(input)?;
    let deg = degree_stats(&g, None);
    println!("nodes      : {}", g.num_nodes());
    println!("edges      : {}", g.num_edges());
    println!("attributes : {}", g.num_attrs());
    println!("avg degree : {:.2}", g.avg_degree());
    println!("max degree : {}", deg.max);
    println!("median deg : {}", deg.median);
    if g.labels().is_some() {
        println!(
            "homophily  : {:.3} (edge), {:.3} (adjusted)",
            edge_homophily(&g),
            adjusted_homophily(&g)
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("vgod_cli_{name}_{}", std::process::id()))
            .display()
            .to_string()
    }

    fn args_of(words: &[&str]) -> Args {
        // Same switch list as main.rs so tests drive the real flag grammar.
        Args::parse_with_switches(
            &words.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            &["out-of-core", "verbose", "prefetch"],
        )
        .unwrap()
    }

    #[test]
    fn full_cli_pipeline_via_library() {
        let graph_path = tmp("graph.txt");
        let injected_path = tmp("injected.txt");
        let truth_path = tmp("truth.txt");
        let scores_path = tmp("scores.tsv");

        generate(&args_of(&[
            "--dataset",
            "cora",
            "--scale",
            "tiny",
            "--seed",
            "3",
            "--out",
            &graph_path,
        ]))
        .unwrap();
        inject(&args_of(&[
            "--in",
            &graph_path,
            "--out",
            &injected_path,
            "--truth",
            &truth_path,
            "--mode",
            "standard",
            "--p",
            "2",
            "--q",
            "8",
            "--k",
            "20",
            "--seed",
            "4",
        ]))
        .unwrap();
        detect(&args_of(&[
            "--in",
            &injected_path,
            "--scores",
            &scores_path,
            "--model",
            "degnorm",
        ]))
        .unwrap();
        eval(&args_of(&[
            "--scores",
            &scores_path,
            "--truth",
            &truth_path,
        ]))
        .unwrap();

        for p in [&graph_path, &injected_path, &truth_path, &scores_path] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn vbm_checkpoint_roundtrip_via_cli() {
        let graph_path = tmp("ck_graph.txt");
        let model_path = tmp("ck_model.txt");
        let s1 = tmp("ck_s1.tsv");
        let s2 = tmp("ck_s2.tsv");
        generate(&args_of(&[
            "--dataset",
            "citeseer",
            "--scale",
            "tiny",
            "--seed",
            "5",
            "--out",
            &graph_path,
        ]))
        .unwrap();
        detect(&args_of(&[
            "--in",
            &graph_path,
            "--scores",
            &s1,
            "--model",
            "vbm",
            "--epochs",
            "3",
            "--hidden",
            "8",
            "--save-model",
            &model_path,
        ]))
        .unwrap();
        detect(&args_of(&[
            "--in",
            &graph_path,
            "--scores",
            &s2,
            "--model",
            "vbm",
            "--load-model",
            &model_path,
        ]))
        .unwrap();
        let read = |p: &str| -> Vec<f32> {
            let mut r = std::io::BufReader::new(File::open(p).unwrap());
            crate::files::read_scores(&mut r).unwrap()
        };
        assert_eq!(
            read(&s1),
            read(&s2),
            "loaded checkpoint must reproduce scores"
        );
        for p in [&graph_path, &model_path, &s1, &s2] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn any_model_checkpoint_roundtrip_via_cli() {
        let graph_path = tmp("any_graph.txt");
        let model_path = tmp("any_model.txt");
        let s1 = tmp("any_s1.tsv");
        let s2 = tmp("any_s2.tsv");
        generate(&args_of(&[
            "--dataset",
            "cora",
            "--scale",
            "tiny",
            "--seed",
            "6",
            "--out",
            &graph_path,
        ]))
        .unwrap();
        detect(&args_of(&[
            "--in",
            &graph_path,
            "--scores",
            &s1,
            "--model",
            "dominant",
            "--epochs",
            "2",
            "--hidden",
            "4",
            "--save-model",
            &model_path,
        ]))
        .unwrap();
        // Loading does not need --model: the checkpoint self-describes.
        detect(&args_of(&[
            "--in",
            &graph_path,
            "--scores",
            &s2,
            "--load-model",
            &model_path,
        ]))
        .unwrap();
        let read = |p: &str| -> Vec<f32> {
            let mut r = std::io::BufReader::new(File::open(p).unwrap());
            crate::files::read_scores(&mut r).unwrap()
        };
        assert_eq!(read(&s1), read(&s2));
        // A kind mismatch against an explicit --model is an error.
        assert!(detect(&args_of(&[
            "--in",
            &graph_path,
            "--scores",
            &s2,
            "--model",
            "cola",
            "--load-model",
            &model_path,
        ]))
        .is_err());
        for p in [&graph_path, &model_path, &s1, &s2] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn serve_subcommand_round_trip() {
        let graph_path = tmp("srv_graph.txt");
        let models_dir = tmp("srv_models");
        let addr_file = tmp("srv_addr.txt");
        let model_path = format!("{models_dir}/degnorm.ckpt");
        let _ = std::fs::remove_dir_all(&models_dir);
        std::fs::create_dir_all(&models_dir).unwrap();
        generate(&args_of(&[
            "--dataset",
            "cora",
            "--scale",
            "tiny",
            "--seed",
            "7",
            "--out",
            &graph_path,
        ]))
        .unwrap();
        detect(&args_of(&[
            "--in",
            &graph_path,
            "--scores",
            &tmp("srv_scores.tsv"),
            "--model",
            "degnorm",
            "--save-model",
            &model_path,
        ]))
        .unwrap();

        let serve_args: Vec<String> = [
            "--models",
            &models_dir,
            "--in",
            &graph_path,
            "--port",
            "0",
            "--replicas",
            "2",
            "--reload-ms",
            "200",
            "--addr-file",
            &addr_file,
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let server = std::thread::spawn(move || {
            serve(&Args::parse_with_switches(&serve_args, &[]).unwrap())
        });

        // Wait for the address file, then talk to the server.
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&addr_file) {
                if let Ok(addr) = text.trim().parse::<std::net::SocketAddr>() {
                    break addr;
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        let (status, _) = vgod_serve::http::get(addr, "/healthz").unwrap();
        assert_eq!(status, 200);
        let (status, body) =
            vgod_serve::http::post(addr, "/score", r#"{"model":"degnorm","nodes":[0]}"#).unwrap();
        assert_eq!(status, 200, "{body}");
        let (status, _) = vgod_serve::http::post(addr, "/shutdown", "").unwrap();
        assert_eq!(status, 200);
        server.join().unwrap().unwrap();

        let _ = std::fs::remove_dir_all(&models_dir);
        for p in [&graph_path, &addr_file, &tmp("srv_scores.tsv")] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn serve_out_of_core_round_trip() {
        let store_path = tmp("srvooc.vgodstore");
        let models_dir = tmp("srvooc_models");
        let addr_file = tmp("srvooc_addr.txt");
        let model_path = format!("{models_dir}/degnorm.ckpt");
        let _ = std::fs::remove_dir_all(&models_dir);
        std::fs::create_dir_all(&models_dir).unwrap();
        store(&args_of(&[
            "--synth-nodes",
            "400",
            "--seed",
            "5",
            "--out",
            &store_path,
        ]))
        .unwrap();
        detect(&args_of(&[
            "--in",
            &store_path,
            "--scores",
            &tmp("srvooc_scores.tsv"),
            "--model",
            "degnorm",
            "--out-of-core",
            "--save-model",
            &model_path,
        ]))
        .unwrap();

        // All replicas share one demand-paged store (forced small budget +
        // a threshold below n so scoring runs the sampled batch pipeline).
        let serve_args: Vec<String> = [
            "--models",
            &models_dir,
            "--in",
            &store_path,
            "--port",
            "0",
            "--replicas",
            "2",
            "--out-of-core",
            "--mem-budget",
            "1M",
            "--threshold",
            "100",
            "--ooc-threads",
            "2",
            "--prefetch",
            "--addr-file",
            &addr_file,
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let server = std::thread::spawn(move || {
            serve(&Args::parse_with_switches(&serve_args, &["out-of-core", "prefetch"]).unwrap())
        });

        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&addr_file) {
                if let Ok(addr) = text.trim().parse::<std::net::SocketAddr>() {
                    break addr;
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        let (status, _) = vgod_serve::http::get(addr, "/healthz").unwrap();
        assert_eq!(status, 200);
        let (status, body) =
            vgod_serve::http::post(addr, "/score", r#"{"model":"degnorm","nodes":[0,399]}"#)
                .unwrap();
        assert_eq!(status, 200, "{body}");
        let (status, body) = vgod_serve::http::get(addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(
            body.contains("\"hits\":"),
            "metrics must surface cache hits: {body}"
        );
        let (status, _) = vgod_serve::http::post(addr, "/shutdown", "").unwrap();
        assert_eq!(status, 200);
        server.join().unwrap().unwrap();

        let _ = std::fs::remove_dir_all(&models_dir);
        for p in [&store_path, &addr_file, &tmp("srvooc_scores.tsv")] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn out_of_core_pipeline_synth_detect_eval() {
        let store_path = tmp("ooc.vgodstore");
        let truth_path = tmp("ooc_truth.txt");
        let scores_path = tmp("ooc_scores.tsv");
        store(&args_of(&[
            "--synth-nodes",
            "600",
            "--seed",
            "3",
            "--out",
            &store_path,
            "--truth",
            &truth_path,
        ]))
        .unwrap();
        store(&args_of(&["--info", &store_path])).unwrap();
        // Force the sampled path with a tiny threshold and budget.
        detect(&args_of(&[
            "--in",
            &store_path,
            "--scores",
            &scores_path,
            "--model",
            "degnorm",
            "--out-of-core",
            "--mem-budget",
            "1M",
            "--threshold",
            "100",
            "--verbose",
        ]))
        .unwrap();
        eval(&args_of(&[
            "--scores",
            &scores_path,
            "--truth",
            &truth_path,
        ]))
        .unwrap();
        // The concurrent pipeline (parallel batches + prefetch) is an
        // optimisation, not a different algorithm: same scores, any policy.
        let scores_par = tmp("ooc_scores_par.tsv");
        detect(&args_of(&[
            "--in",
            &store_path,
            "--scores",
            &scores_par,
            "--model",
            "degnorm",
            "--out-of-core",
            "--mem-budget",
            "1M",
            "--threshold",
            "100",
            "--ooc-threads",
            "4",
            "--prefetch",
            "--cache-policy",
            "lru",
        ]))
        .unwrap();
        let read = |p: &str| -> Vec<f32> {
            let mut r = std::io::BufReader::new(File::open(p).unwrap());
            crate::files::read_scores(&mut r).unwrap()
        };
        assert_eq!(read(&scores_path), read(&scores_par));
        for p in [&store_path, &truth_path, &scores_path, &scores_par] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn converted_store_matches_in_memory_below_threshold() {
        let graph_path = tmp("conv_graph.txt");
        let store_path = tmp("conv.vgodstore");
        let s_mem = tmp("conv_mem.tsv");
        let s_ooc = tmp("conv_ooc.tsv");
        generate(&args_of(&[
            "--dataset",
            "cora",
            "--scale",
            "tiny",
            "--seed",
            "8",
            "--out",
            &graph_path,
        ]))
        .unwrap();
        store(&args_of(&["--in", &graph_path, "--out", &store_path])).unwrap();
        detect(&args_of(&[
            "--in",
            &graph_path,
            "--scores",
            &s_mem,
            "--model",
            "degnorm",
        ]))
        .unwrap();
        // Below the sampling threshold the store path materialises the full
        // graph and must reproduce the in-memory scores bit-for-bit.
        detect(&args_of(&[
            "--in",
            &store_path,
            "--scores",
            &s_ooc,
            "--model",
            "degnorm",
            "--out-of-core",
        ]))
        .unwrap();
        let read = |p: &str| -> Vec<f32> {
            let mut r = std::io::BufReader::new(File::open(p).unwrap());
            crate::files::read_scores(&mut r).unwrap()
        };
        assert_eq!(read(&s_mem), read(&s_ooc));
        for p in [&graph_path, &store_path, &s_mem, &s_ooc] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn unknown_inputs_are_rejected() {
        assert!(parse_dataset("imdb").is_err());
        assert!(generate(&args_of(&[
            "--dataset",
            "cora",
            "--out",
            "/nonexistent-dir/x"
        ]))
        .is_err());
        assert!(detect(&args_of(&[
            "--in",
            "/no/such/file",
            "--scores",
            "/tmp/x",
            "--model",
            "vgod"
        ]))
        .is_err());
        assert!(inject(&args_of(&[
            "--in",
            "/no/such/file",
            "--out",
            "/tmp/a",
            "--truth",
            "/tmp/b",
            "--mode",
            "bogus"
        ]))
        .is_err());
    }
}
