//! A small `--flag value` argument parser (keeps `clap` out of the
//! dependency tree).

use std::collections::BTreeMap;

/// Parsed command-line flags: `--key value` pairs plus positional words.
#[derive(Clone, Debug, Default)]
pub struct Args {
    flags: BTreeMap<String, String>,
    positional: Vec<String>,
}

/// Errors from flag parsing and typed access.
#[derive(Debug, PartialEq, Eq)]
pub enum ArgError {
    /// A `--flag` had no following value.
    MissingValue(String),
    /// A required flag is absent.
    Required(String),
    /// A flag value failed to parse as the requested type.
    Invalid {
        flag: String,
        value: String,
        expected: &'static str,
    },
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "flag --{flag} expects a value"),
            ArgError::Required(flag) => write!(f, "missing required flag --{flag}"),
            ArgError::Invalid {
                flag,
                value,
                expected,
            } => {
                write!(f, "--{flag} {value:?}: expected {expected}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse a word list where the named `switches` are boolean flags that
    /// take no value (`--verbose`); every other `--flag` still consumes the
    /// following word. Query switches with [`Args::has`].
    pub fn parse_with_switches(words: &[String], switches: &[&str]) -> Result<Self, ArgError> {
        let mut flags = BTreeMap::new();
        let mut positional = Vec::new();
        let mut iter = words.iter();
        while let Some(word) = iter.next() {
            if let Some(name) = word.strip_prefix("--") {
                if switches.contains(&name) {
                    flags.insert(name.to_string(), "true".to_string());
                } else {
                    let value = iter
                        .next()
                        .ok_or_else(|| ArgError::MissingValue(name.to_string()))?;
                    flags.insert(name.to_string(), value.clone());
                }
            } else {
                positional.push(word.clone());
            }
        }
        Ok(Self { flags, positional })
    }

    /// Whether a boolean switch was given.
    pub fn has(&self, flag: &str) -> bool {
        self.flags.contains_key(flag)
    }

    /// Positional (non-flag) words.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Raw string flag, if present.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    /// Required string flag.
    pub fn required(&self, flag: &str) -> Result<&str, ArgError> {
        self.get(flag)
            .ok_or_else(|| ArgError::Required(flag.to_string()))
    }

    /// Typed flag with a default when absent.
    pub fn get_parsed_or<T: std::str::FromStr>(
        &self,
        flag: &str,
        default: T,
    ) -> Result<T, ArgError> {
        match self.get(flag) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::Invalid {
                flag: flag.to_string(),
                value: raw.to_string(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(s: &[&str]) -> Vec<String> {
        s.iter().map(|w| w.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let a = Args::parse_with_switches(
            &words(&["--seed", "7", "graph.txt", "--scale", "small"]),
            &[],
        )
        .unwrap();
        assert_eq!(a.get("seed"), Some("7"));
        assert_eq!(a.get("scale"), Some("small"));
        assert_eq!(a.positional(), &["graph.txt".to_string()]);
        assert_eq!(a.get_parsed_or("seed", 0u64).unwrap(), 7);
        assert_eq!(a.get_parsed_or("missing", 42u64).unwrap(), 42);
    }

    #[test]
    fn switches_take_no_value() {
        let a = Args::parse_with_switches(
            &words(&["--verbose", "--seed", "7", "--out-of-core", "g.store"]),
            &["verbose", "out-of-core"],
        )
        .unwrap();
        assert!(a.has("verbose"));
        assert!(a.has("out-of-core"));
        assert!(!a.has("absent"));
        assert_eq!(a.get("seed"), Some("7"));
        assert_eq!(a.positional(), &["g.store".to_string()]);
        // A trailing switch is fine; a trailing value flag still errors.
        assert!(Args::parse_with_switches(&words(&["--verbose"]), &["verbose"]).is_ok());
        assert_eq!(
            Args::parse_with_switches(&words(&["--seed"]), &["verbose"]).unwrap_err(),
            ArgError::MissingValue("seed".into())
        );
    }

    #[test]
    fn reports_missing_value_and_bad_types() {
        assert_eq!(
            Args::parse_with_switches(&words(&["--seed"]), &[]).unwrap_err(),
            ArgError::MissingValue("seed".into())
        );
        let a = Args::parse_with_switches(&words(&["--seed", "abc"]), &[]).unwrap();
        assert!(matches!(
            a.get_parsed_or("seed", 0u64),
            Err(ArgError::Invalid { .. })
        ));
        assert_eq!(
            a.required("nope").unwrap_err(),
            ArgError::Required("nope".into())
        );
    }
}
