//! `vgod` — command-line interface for the vgod-rs workspace.
//!
//! ```text
//! vgod generate --dataset cora --scale small --seed 42 --out graph.txt
//! vgod inject   --in graph.txt --mode standard --p 5 --q 15 --k 50 \
//!               --out injected.txt --truth truth.txt --seed 1
//! vgod detect   --in injected.txt --model vgod --scores scores.tsv
//! vgod eval     --scores scores.tsv --truth truth.txt --at 50
//! vgod stats    --in graph.txt
//! ```

mod args;
mod commands;
mod files;

use args::Args;

const USAGE: &str = "\
vgod — unsupervised graph outlier detection (VGOD, ICDE 2023 reproduction)

USAGE:
  vgod <command> [--flag value]...

COMMANDS:
  generate   create a synthetic dataset replica
             --dataset cora|citeseer|pubmed|flickr|weibo  --scale tiny|small|medium|paper
             --seed N  --out FILE  [--truth FILE: weibo only]
  inject     plant outliers into a graph
             --in FILE  --out FILE  --truth FILE  --seed N
             --mode standard|structural|contextual|replacement
             [--p N --q N --k N --metric euclidean|cosine --fraction F]
  detect     train a detector and write per-node outlier scores
             --in FILE  --scores FILE  --model vgod|vbm|arm|dominant|anomalydae|done|cola|conad|radar|degnorm|deg|l2norm|random
             [--epochs N --hidden N --lr F --seed N --self-loops true|false]
             [--batch N: mini-batch training for vbm/arm]
             [--save-model FILE | --load-model FILE: checkpoint for any model]
             [--out-of-core: --in is a .vgodstore file, demand-paged under --mem-budget]
             [--mem-budget SIZE (default 256M) --threshold N --fanout N --hops N]
             [--train-seeds N --sample-seed N --verbose: print store stats]
             [--ooc-threads N: parallel score batches, 0 = worker pool size]
             [--prefetch: overlap next-batch block reads with compute]
             [--cache-policy segmented|lru: block replacement, default segmented]
             [--shards N: partition the graph and score across N forked
              worker processes; merged output is byte-identical]
  store      build, convert, or inspect on-disk graph stores (.vgodstore)
             --synth-nodes N --out FILE [--seed N --truth FILE]   synthesize at scale
             --in graph.txt --out FILE                            convert a text graph
             --info FILE [--mem-budget SIZE]                      print header + stats
             --info DIR                                           print partition metadata
  serve      serve checkpointed models over HTTP (replicated micro-batched scoring)
             --models DIR  --in FILE  [--host H --port N: default 127.0.0.1:7878]
             [--max-batch N --max-wait-us N --queue N: per-replica queue]
             [--replicas N: scoring replicas, 0 = one per core (default)]
             [--reload-ms N: checkpoint hot-reload poll interval, default 500]
             [--addr-file FILE: write the bound address, useful with --port 0]
             [--out-of-core: replicas share one demand-paged store under
              --mem-budget, --cache-policy and the detect sampling flags]
             [--shards N: partition --in, fork one shard-worker process per
              shard, and run the scatter-gather coordinator on this port]
             [--partition-dir DIR: keep the partition here (default: temp)]
             [--streaming: mutable graph + POST /graph/update; applied
              batches delta-rescore the dirty k-hop frontier per model]
             [--compact-bytes SIZE: overlay fold threshold, default 4M]
             [--update-queue N: pending mutation batches, default 256]
  stream-gen generate a mutation log (JSONL batches) plus the final graph
             --in FILE  --out LOG  --final FILE  [--batches N --ops N --seed N]
  stream-replay  POST a mutation log to a streaming server, batch by batch
             --log LOG  --addr HOST:PORT  [--model NAME: fetch the model's
              served scores after replay --scores-out FILE: write them as a
              score file, byte-comparable to detect --scores output]
  eval       score a ranking against ground truth
             --scores FILE  --truth FILE  [--at K]
  stats      print graph statistics
             --in FILE
";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        eprint!("{USAGE}");
        std::process::exit(2);
    };
    let args = match Args::parse_with_switches(rest, &["out-of-core", "verbose", "prefetch", "streaming"]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };
    // Every input is a named flag; stray words are most likely typos.
    if let Some(stray) = args.positional().first() {
        eprintln!("error: unexpected argument {stray:?} (all inputs are --flag value pairs)\n");
        eprint!("{USAGE}");
        std::process::exit(2);
    }
    let result = match command.as_str() {
        "generate" => commands::generate(&args),
        "inject" => commands::inject(&args),
        "detect" => commands::detect(&args),
        "store" => commands::store(&args),
        "serve" => commands::serve(&args),
        // Internal: one shard's scoring process, forked by --shards.
        "shard-worker" => commands::shard_worker(&args),
        "stream-gen" => commands::stream_gen(&args),
        "stream-replay" => commands::stream_replay(&args),
        "eval" => commands::eval(&args),
        "stats" => commands::stats(&args),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
