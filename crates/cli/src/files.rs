//! Ground-truth and score files (one record per line, whitespace-separated).

use std::io::{BufRead, Write};

use vgod_inject::{GroundTruth, OutlierKind};

/// Write ground truth as `node kind` lines (`normal|structural|contextual`).
pub fn write_truth(truth: &GroundTruth, out: &mut impl Write) -> std::io::Result<()> {
    for u in 0..truth.len() as u32 {
        let kind = match truth.kind(u) {
            OutlierKind::Normal => "normal",
            OutlierKind::Structural => "structural",
            OutlierKind::Contextual => "contextual",
        };
        writeln!(out, "{u} {kind}")?;
    }
    Ok(())
}

/// Read a truth file written by [`write_truth`].
pub fn read_truth(input: &mut impl BufRead) -> Result<GroundTruth, String> {
    let mut entries: Vec<(u32, OutlierKind)> = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let node: u32 = parts
            .next()
            .ok_or_else(|| format!("line {}: missing node id", lineno + 1))?
            .parse()
            .map_err(|e| format!("line {}: bad node id ({e})", lineno + 1))?;
        let kind = match parts.next() {
            Some("normal") => OutlierKind::Normal,
            Some("structural") => OutlierKind::Structural,
            Some("contextual") => OutlierKind::Contextual,
            other => return Err(format!("line {}: bad kind {other:?}", lineno + 1)),
        };
        entries.push((node, kind));
    }
    let n = entries
        .iter()
        .map(|&(u, _)| u as usize + 1)
        .max()
        .unwrap_or(0);
    let mut truth = GroundTruth::new(n);
    for (u, kind) in entries {
        truth.mark(u, kind);
    }
    Ok(truth)
}

/// Write scores as `node score` lines.
pub fn write_scores(scores: &[f32], out: &mut impl Write) -> std::io::Result<()> {
    for (u, s) in scores.iter().enumerate() {
        writeln!(out, "{u} {s}")?;
    }
    Ok(())
}

/// Read a score file written by [`write_scores`].
pub fn read_scores(input: &mut impl BufRead) -> Result<Vec<f32>, String> {
    let mut pairs: Vec<(usize, f32)> = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let node: usize = parts
            .next()
            .ok_or_else(|| format!("line {}: missing node id", lineno + 1))?
            .parse()
            .map_err(|e| format!("line {}: bad node id ({e})", lineno + 1))?;
        let score: f32 = parts
            .next()
            .ok_or_else(|| format!("line {}: missing score", lineno + 1))?
            .parse()
            .map_err(|e| format!("line {}: bad score ({e})", lineno + 1))?;
        pairs.push((node, score));
    }
    let n = pairs.iter().map(|&(u, _)| u + 1).max().unwrap_or(0);
    let mut scores = vec![f32::NAN; n];
    for (u, s) in pairs {
        scores[u] = s;
    }
    if let Some(hole) = scores.iter().position(|s| s.is_nan()) {
        return Err(format!("node {hole} has no score line"));
    }
    Ok(scores)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_roundtrip() {
        let mut t = GroundTruth::new(4);
        t.mark(1, OutlierKind::Structural);
        t.mark(3, OutlierKind::Contextual);
        let mut buf = Vec::new();
        write_truth(&t, &mut buf).unwrap();
        let back = read_truth(&mut buf.as_slice()).unwrap();
        assert_eq!(back.len(), 4);
        for u in 0..4u32 {
            assert_eq!(back.kind(u), t.kind(u));
        }
    }

    #[test]
    fn scores_roundtrip_and_holes_detected() {
        let scores = vec![0.5, -1.25, 3.0];
        let mut buf = Vec::new();
        write_scores(&scores, &mut buf).unwrap();
        assert_eq!(read_scores(&mut buf.as_slice()).unwrap(), scores);

        let partial = b"0 1.0\n2 2.0\n";
        assert!(read_scores(&mut partial.as_slice())
            .unwrap_err()
            .contains("node 1"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_truth(&mut b"0 goblin\n".as_slice()).is_err());
        assert!(read_scores(&mut b"zero 1.0\n".as_slice()).is_err());
    }
}
