//! Contextual outlier injection (§IV-B1): attribute disturbance via the
//! farthest of `k` candidate vectors.

use rand::Rng;
use vgod_graph::AttributedGraph;

use crate::structural::StructuralParams;
use crate::{GroundTruth, OutlierKind};

/// Distance measure used to select the replacement attribute vector. The
/// paper identifies Euclidean distance as a leakage factor and studies
/// cosine distance as a mitigation (Fig. 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DistanceMetric {
    /// `‖a − b‖₂` — the standard (leaky) choice.
    Euclidean,
    /// `1 − cos(a, b)` — magnitude-blind alternative.
    Cosine,
}

impl DistanceMetric {
    /// Distance between two attribute vectors.
    pub fn distance(self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            DistanceMetric::Euclidean => a
                .iter()
                .zip(b)
                .map(|(&x, &y)| (x - y) * (x - y))
                .sum::<f32>()
                .sqrt(),
            DistanceMetric::Cosine => {
                let dot: f32 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
                let na: f32 = a.iter().map(|v| v * v).sum::<f32>().sqrt();
                let nb: f32 = b.iter().map(|v| v * v).sum::<f32>().sqrt();
                if na <= f32::MIN_POSITIVE || nb <= f32::MIN_POSITIVE {
                    1.0
                } else {
                    1.0 - dot / (na * nb)
                }
            }
        }
    }
}

impl std::fmt::Display for DistanceMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DistanceMetric::Euclidean => "euclidean",
            DistanceMetric::Cosine => "cosine",
        })
    }
}

/// Parameters of the standard contextual injection.
#[derive(Clone, Copy, Debug)]
pub struct ContextualParams {
    /// Number of contextual outliers to inject (the standard protocol uses
    /// `p·q`, matching the structural count).
    pub count: usize,
    /// Candidate-set size `k` (the paper's default is 50; Fig. 3 varies it).
    pub candidates: usize,
    /// Distance used to pick the replacement vector.
    pub metric: DistanceMetric,
}

impl ContextualParams {
    /// The paper's default protocol: count matching `p·q`, `k = 50`,
    /// Euclidean distance.
    pub fn standard(structural: &StructuralParams) -> Self {
        Self {
            count: structural.num_cliques * structural.clique_size,
            candidates: 50,
            metric: DistanceMetric::Euclidean,
        }
    }
}

/// Standard contextual injection: for each of `count` randomly chosen
/// normal nodes `v_i`, sample `k` candidate nodes uniformly from `V`,
/// compute the distance from each candidate's attribute vector to `x_i`,
/// and overwrite `x_i` with the farthest candidate's vector. Marks the
/// chosen nodes in `truth` and returns their ids.
pub fn inject_contextual(
    g: &mut AttributedGraph,
    truth: &mut GroundTruth,
    params: &ContextualParams,
    rng: &mut impl Rng,
) -> Vec<u32> {
    assert!(params.candidates >= 1, "candidate set must be non-empty");
    let n = g.num_nodes();
    // Choose targets among currently-normal nodes.
    let mut pool = truth.normal_nodes();
    assert!(
        pool.len() >= params.count,
        "not enough normal nodes to inject contextual outliers"
    );
    rand::seq::SliceRandom::shuffle(pool.as_mut_slice(), rng);
    pool.truncate(params.count);

    // Snapshot of the original attribute matrix: candidates are drawn from
    // the *pre-injection* attribute population, as in the reference code
    // (each target's replacement comes from another node's original vector).
    let original = g.attrs().clone();

    for &u in &pool {
        let xu: Vec<f32> = original.row(u as usize).to_vec();
        let mut best_dist = f32::NEG_INFINITY;
        let mut best_row: Option<u32> = None;
        for _ in 0..params.candidates {
            let c = rng.gen_range(0..n as u32);
            if c == u {
                continue;
            }
            let d = params.metric.distance(original.row(c as usize), &xu);
            if d > best_dist {
                best_dist = d;
                best_row = Some(c);
            }
        }
        if let Some(c) = best_row {
            let replacement: Vec<f32> = original.row(c as usize).to_vec();
            g.attrs_mut()
                .row_mut(u as usize)
                .copy_from_slice(&replacement);
        }
        truth.mark(u, OutlierKind::Contextual);
    }
    pool
}

/// Alternative contextual injection without candidate selection: perturb
/// each chosen node's attributes with additive Gaussian noise of relative
/// magnitude `noise_scale` (relative to the population's per-dimension
/// standard deviation).
///
/// This follows the paper's §IV-C suggestion to design injections that do
/// not inherit the max-distance norm bias: the perturbation direction is
/// isotropic, so the expected L2-norm inflation is far smaller than the
/// standard approach's at comparable disturbance amplitudes.
pub fn inject_contextual_noise(
    g: &mut AttributedGraph,
    truth: &mut GroundTruth,
    count: usize,
    noise_scale: f32,
    rng: &mut impl Rng,
) -> Vec<u32> {
    let mut pool = truth.normal_nodes();
    assert!(
        pool.len() >= count,
        "not enough normal nodes to inject contextual outliers"
    );
    rand::seq::SliceRandom::shuffle(pool.as_mut_slice(), rng);
    pool.truncate(count);

    // Per-dimension population standard deviation calibrates the noise.
    let x = g.attrs();
    let (n, d) = x.shape();
    let mut std_per_dim = vec![0.0f32; d];
    for c in 0..d {
        let mut sum = 0.0f32;
        let mut sq = 0.0f32;
        for r in 0..n {
            let v = x[(r, c)];
            sum += v;
            sq += v * v;
        }
        let mean = sum / n.max(1) as f32;
        std_per_dim[c] = (sq / n.max(1) as f32 - mean * mean).max(0.0).sqrt();
    }

    for &u in &pool {
        let row = g.attrs_mut().row_mut(u as usize);
        for (v, &sd) in row.iter_mut().zip(&std_per_dim) {
            *v += noise_scale * sd * vgod_graph::standard_normal(rng);
        }
        truth.mark(u, OutlierKind::Contextual);
    }
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgod_graph::seeded_rng;
    use vgod_tensor::Matrix;

    fn graph_with_norm_gradient(n: usize) -> AttributedGraph {
        // Node i's attribute vector is [i, 0] — norms strictly increase.
        let x = Matrix::from_fn(n, 2, |r, c| if c == 0 { r as f32 } else { 0.0 });
        AttributedGraph::new(x)
    }

    #[test]
    fn replaces_attributes_with_existing_vectors() {
        let mut rng = seeded_rng(0);
        let mut g = graph_with_norm_gradient(100);
        let original = g.attrs().clone();
        let mut truth = GroundTruth::new(100);
        let chosen = inject_contextual(
            &mut g,
            &mut truth,
            &ContextualParams {
                count: 10,
                candidates: 20,
                metric: DistanceMetric::Euclidean,
            },
            &mut rng,
        );
        assert_eq!(chosen.len(), 10);
        for &u in &chosen {
            let row = g.attrs().row(u as usize);
            // The new vector must exist in the original population.
            let found = (0..100).any(|r| original.row(r) == row);
            assert!(found, "node {u} got a fabricated vector");
            assert_eq!(truth.kind(u), OutlierKind::Contextual);
        }
    }

    #[test]
    fn euclidean_with_large_k_inflates_l2_norm() {
        // The data-leakage property (Theorem 1): with a large candidate set
        // and Euclidean distance, the replacement vectors skew toward large
        // norms. Theorem 1 needs rank(X) > 1 and direction/magnitude
        // independence, so use multi-dimensional vectors with varying radii.
        let mut rng = seeded_rng(1);
        let n = 600;
        let d = 8;
        let x = Matrix::from_fn(n, d, |r, c| {
            // Pseudo-random direction, radius varying smoothly with r.
            let raw = (((r * 131 + c * 53 + 17) % 97) as f32 / 97.0) * 2.0 - 1.0;
            let radius = 0.5 + 3.0 * ((r * 71 % 100) as f32 / 100.0);
            raw * radius
        });
        let mut g = AttributedGraph::new(x);
        let pop_avg_norm: f32 = (0..n).map(|r| row_norm(g.attrs().row(r))).sum::<f32>() / n as f32;
        let mut truth = GroundTruth::new(n);
        let chosen = inject_contextual(
            &mut g,
            &mut truth,
            &ContextualParams {
                count: 60,
                candidates: 50,
                metric: DistanceMetric::Euclidean,
            },
            &mut rng,
        );
        let avg_outlier_norm: f32 = chosen
            .iter()
            .map(|&u| row_norm(g.attrs().row(u as usize)))
            .sum::<f32>()
            / chosen.len() as f32;
        assert!(
            avg_outlier_norm > 1.2 * pop_avg_norm,
            "avg outlier norm {avg_outlier_norm} vs population {pop_avg_norm}"
        );
    }

    fn row_norm(row: &[f32]) -> f32 {
        row.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    #[test]
    fn cosine_metric_ignores_magnitude() {
        let a = [1.0, 0.0];
        let b = [100.0, 0.0];
        let c = [0.0, 1.0];
        assert!(DistanceMetric::Cosine.distance(&a, &b) < 1e-6);
        assert!((DistanceMetric::Cosine.distance(&a, &c) - 1.0).abs() < 1e-6);
        assert!(DistanceMetric::Euclidean.distance(&a, &b) > 90.0);
    }

    #[test]
    fn zero_vector_cosine_distance_is_defined() {
        assert_eq!(
            DistanceMetric::Cosine.distance(&[0.0, 0.0], &[1.0, 1.0]),
            1.0
        );
    }

    #[test]
    fn contextual_injection_leaves_structure_untouched() {
        let mut rng = seeded_rng(2);
        let mut g = graph_with_norm_gradient(50);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let edges_before = g.num_edges();
        let mut truth = GroundTruth::new(50);
        inject_contextual(
            &mut g,
            &mut truth,
            &ContextualParams {
                count: 5,
                candidates: 10,
                metric: DistanceMetric::Cosine,
            },
            &mut rng,
        );
        assert_eq!(g.num_edges(), edges_before);
    }
}

#[cfg(test)]
mod noise_tests {
    use super::*;
    use vgod_graph::seeded_rng;
    use vgod_tensor::Matrix;

    #[test]
    fn noise_injection_marks_and_perturbs() {
        let mut rng = seeded_rng(11);
        let x = Matrix::from_fn(100, 6, |r, c| ((r * 3 + c) % 7) as f32 * 0.4);
        let mut g = AttributedGraph::new(x.clone());
        let mut truth = GroundTruth::new(100);
        let chosen = inject_contextual_noise(&mut g, &mut truth, 10, 3.0, &mut rng);
        assert_eq!(chosen.len(), 10);
        for &u in &chosen {
            assert_eq!(truth.kind(u), OutlierKind::Contextual);
            assert_ne!(g.attrs().row(u as usize), x.row(u as usize));
        }
        // Untouched nodes keep their attributes.
        for u in 0..100u32 {
            if truth.is_normal(u) {
                assert_eq!(g.attrs().row(u as usize), x.row(u as usize));
            }
        }
    }

    #[test]
    fn isotropic_noise_barely_biases_l2_norm() {
        // Unlike the standard max-Euclidean approach, isotropic noise at a
        // moderate scale should leave the mean outlier norm within ~50% of
        // the population mean (vs the >2x inflation of the standard path).
        let mut rng = seeded_rng(12);
        let x = Matrix::from_fn(400, 12, |r, c| {
            (((r * 131 + c * 53 + 17) % 97) as f32 / 97.0 - 0.5) * 4.0
        });
        let pop_norm: f32 = (0..400)
            .map(|r| x.row(r).iter().map(|v| v * v).sum::<f32>().sqrt())
            .sum::<f32>()
            / 400.0;
        let mut g = AttributedGraph::new(x);
        let mut truth = GroundTruth::new(400);
        let chosen = inject_contextual_noise(&mut g, &mut truth, 40, 1.0, &mut rng);
        let out_norm: f32 = chosen
            .iter()
            .map(|&u| {
                g.attrs()
                    .row(u as usize)
                    .iter()
                    .map(|v| v * v)
                    .sum::<f32>()
                    .sqrt()
            })
            .sum::<f32>()
            / chosen.len() as f32;
        assert!(
            out_norm < 1.6 * pop_norm,
            "noise injection inflated norms too much: {out_norm} vs population {pop_norm}"
        );
    }
}
