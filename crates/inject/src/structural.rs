//! Structural outlier injection: the standard clique approach (§IV-A1), the
//! varied-clique-size protocol (§VI-C1), and the paper's new
//! degree-preserving approach (§VI-D1).

use rand::seq::SliceRandom;
use rand::Rng;
use vgod_graph::AttributedGraph;

use crate::{GroundTruth, OutlierKind};

/// Parameters of the standard clique injection.
#[derive(Clone, Copy, Debug)]
pub struct StructuralParams {
    /// Number of cliques `p`.
    pub num_cliques: usize,
    /// Clique size `q` (the paper's default is 15; Table V varies it).
    pub clique_size: usize,
}

/// One injected group of structural outliers (all cliques of one size).
#[derive(Clone, Debug)]
pub struct StructuralGroup {
    /// Clique size `q` of this group.
    pub clique_size: usize,
    /// The nodes injected in this group.
    pub members: Vec<u32>,
}

/// Draw `count` distinct currently-normal nodes.
fn draw_normal_nodes(truth: &GroundTruth, count: usize, rng: &mut impl Rng) -> Vec<u32> {
    let mut pool = truth.normal_nodes();
    assert!(
        pool.len() >= count,
        "not enough normal nodes to inject {count} outliers"
    );
    pool.shuffle(rng);
    pool.truncate(count);
    pool
}

/// Standard structural injection (§IV-A1): choose `p·q` random normal
/// nodes, partition them into `p` groups of `q`, and make each group a
/// clique. Marks the chosen nodes in `truth`.
///
/// Returns the injected node ids.
pub fn inject_structural(
    g: &mut AttributedGraph,
    truth: &mut GroundTruth,
    params: &StructuralParams,
    rng: &mut impl Rng,
) -> Vec<u32> {
    let total = params.num_cliques * params.clique_size;
    let chosen = draw_normal_nodes(truth, total, rng);
    for clique in chosen.chunks(params.clique_size) {
        g.make_clique(clique);
    }
    for &u in &chosen {
        truth.mark(u, OutlierKind::Structural);
    }
    chosen
}

/// Varied-clique-size injection (§VI-C1): for each `q` in `clique_sizes`,
/// inject a group of `⌊fraction_per_group · n⌋` structural outliers as
/// cliques of size `q` (the last clique of a group may be smaller when the
/// group size is not a multiple of `q`).
pub fn inject_structural_groups(
    g: &mut AttributedGraph,
    truth: &mut GroundTruth,
    clique_sizes: &[usize],
    fraction_per_group: f32,
    rng: &mut impl Rng,
) -> Vec<StructuralGroup> {
    let per_group = ((g.num_nodes() as f32 * fraction_per_group).round() as usize).max(1);
    clique_sizes
        .iter()
        .map(|&q| {
            assert!(q >= 2, "clique size must be at least 2");
            let members = draw_normal_nodes(truth, per_group, rng);
            for clique in members.chunks(q) {
                g.make_clique(clique);
            }
            for &u in &members {
                truth.mark(u, OutlierKind::Structural);
            }
            StructuralGroup {
                clique_size: q,
                members,
            }
        })
        .collect()
}

/// The paper's new degree-preserving injection (§VI-D1): each chosen node
/// keeps its degree but every neighbour is replaced by a node sampled
/// uniformly from *other* communities. Requires community labels.
///
/// Returns the injected node ids.
///
/// # Panics
/// Panics if the graph has no community labels or only one community.
pub fn inject_community_replacement(
    g: &mut AttributedGraph,
    truth: &mut GroundTruth,
    fraction: f32,
    rng: &mut impl Rng,
) -> Vec<u32> {
    let labels: Vec<u32> = g
        .labels()
        .expect("community-replacement injection needs labels")
        .to_vec();
    let n_comm = labels.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
    assert!(
        n_comm >= 2,
        "community-replacement injection needs ≥2 communities"
    );

    // Bucket nodes by community for uniform sampling from "other" ones.
    let mut by_comm: Vec<Vec<u32>> = vec![Vec::new(); n_comm];
    for (i, &c) in labels.iter().enumerate() {
        by_comm[c as usize].push(i as u32);
    }

    let count = ((g.num_nodes() as f32 * fraction).round() as usize).max(1);
    let chosen = draw_normal_nodes(truth, count, rng);
    let is_chosen: std::collections::HashSet<u32> = chosen.iter().copied().collect();
    // Degrees to preserve, measured before any rewiring.
    let target_degree: Vec<usize> = chosen.iter().map(|&u| g.degree(u)).collect();

    // Replacement targets are sampled uniformly from *non-chosen* nodes of
    // other communities, so that no injected node's preserved degree is
    // perturbed by another injection.
    for (&u, &needed) in chosen.iter().zip(&target_degree) {
        let cu = labels[u as usize] as usize;
        g.detach_node(u);
        let total_other: usize = by_comm
            .iter()
            .enumerate()
            .filter(|&(c, _)| c != cu)
            .map(|(_, m)| m.iter().filter(|v| !is_chosen.contains(v)).count())
            .sum();
        let mut replaced = 0usize;
        let mut guard = 0usize;
        while replaced < needed && guard < needed * 80 + 200 && total_other > replaced {
            guard += 1;
            let mut t = rng.gen_range(0..total_other);
            let mut v = None;
            'outer: for (c, members) in by_comm.iter().enumerate() {
                if c == cu {
                    continue;
                }
                for &m in members {
                    if is_chosen.contains(&m) {
                        continue;
                    }
                    if t == 0 {
                        v = Some(m);
                        break 'outer;
                    }
                    t -= 1;
                }
            }
            let v = v.expect("weighted pick lands in some community");
            if v != u && g.add_edge(u, v) {
                replaced += 1;
            }
        }
        truth.mark(u, OutlierKind::Structural);
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgod_graph::{community_graph, seeded_rng, CommunityGraphConfig};
    use vgod_tensor::Matrix;

    fn base_graph(n: usize, rng: &mut impl Rng) -> AttributedGraph {
        let mut g = community_graph(&CommunityGraphConfig::homogeneous(n, 4, 4.0, 0.9), rng);
        g.set_attrs(Matrix::zeros(n, 4));
        g
    }

    #[test]
    fn clique_injection_marks_and_connects() {
        let mut rng = seeded_rng(1);
        let mut g = base_graph(200, &mut rng);
        let mut truth = GroundTruth::new(200);
        let chosen = inject_structural(
            &mut g,
            &mut truth,
            &StructuralParams {
                num_cliques: 2,
                clique_size: 6,
            },
            &mut rng,
        );
        assert_eq!(chosen.len(), 12);
        // Every injected node has degree ≥ q−1.
        for &u in &chosen {
            assert!(g.degree(u) >= 5, "node {u} degree {}", g.degree(u));
            assert_eq!(truth.kind(u), OutlierKind::Structural);
        }
        assert!(g.check_invariants());
    }

    #[test]
    fn groups_do_not_overlap() {
        let mut rng = seeded_rng(2);
        let mut g = base_graph(400, &mut rng);
        let mut truth = GroundTruth::new(400);
        let groups = inject_structural_groups(&mut g, &mut truth, &[3, 5, 10, 15], 0.02, &mut rng);
        assert_eq!(groups.len(), 4);
        let mut seen = std::collections::HashSet::new();
        for gr in &groups {
            assert_eq!(gr.members.len(), 8); // 2% of 400
            for &u in &gr.members {
                assert!(seen.insert(u), "node {u} in two groups");
            }
        }
        assert_eq!(truth.structural_nodes().len(), 32);
    }

    #[test]
    fn clique_members_are_fully_connected() {
        let mut rng = seeded_rng(3);
        let mut g = base_graph(100, &mut rng);
        let mut truth = GroundTruth::new(100);
        let chosen = inject_structural(
            &mut g,
            &mut truth,
            &StructuralParams {
                num_cliques: 1,
                clique_size: 8,
            },
            &mut rng,
        );
        for i in 0..chosen.len() {
            for j in i + 1..chosen.len() {
                assert!(g.has_edge(chosen[i], chosen[j]));
            }
        }
    }

    #[test]
    fn community_replacement_preserves_degree() {
        let mut rng = seeded_rng(4);
        let mut g = base_graph(300, &mut rng);
        let degrees_before: Vec<usize> = (0..300u32).map(|u| g.degree(u)).collect();
        let mut truth = GroundTruth::new(300);
        let chosen = inject_community_replacement(&mut g, &mut truth, 0.1, &mut rng);
        assert_eq!(chosen.len(), 30);
        for &u in &chosen {
            assert_eq!(
                g.degree(u),
                degrees_before[u as usize],
                "degree of injected node {u} changed"
            );
        }
        assert!(g.check_invariants());
    }

    #[test]
    fn community_replacement_links_only_other_communities() {
        let mut rng = seeded_rng(5);
        let mut g = base_graph(300, &mut rng);
        let labels = g.labels().unwrap().to_vec();
        let mut truth = GroundTruth::new(300);
        let chosen = inject_community_replacement(&mut g, &mut truth, 0.05, &mut rng);
        for &u in &chosen {
            for &v in g.neighbors(u) {
                // A neighbour could itself be an injected outlier that later
                // linked to u; only check edges u initiated: all of u's
                // neighbours must be from other communities unless v was
                // injected after u.
                if truth.kind(v) == OutlierKind::Normal {
                    assert_ne!(
                        labels[u as usize], labels[v as usize],
                        "outlier {u} kept an intra-community neighbour {v}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "not enough normal nodes")]
    fn over_injection_panics() {
        let mut rng = seeded_rng(6);
        let mut g = base_graph(40, &mut rng);
        let mut truth = GroundTruth::new(40);
        let _ = inject_structural(
            &mut g,
            &mut truth,
            &StructuralParams {
                num_cliques: 5,
                clique_size: 15,
            },
            &mut rng,
        );
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            #[test]
            fn injection_never_breaks_invariants(seed in 0u64..500, p in 1usize..4, q in 2usize..8) {
                let mut rng = seeded_rng(seed);
                let mut g = base_graph(150, &mut rng);
                let mut truth = GroundTruth::new(150);
                inject_structural(&mut g, &mut truth, &StructuralParams { num_cliques: p, clique_size: q }, &mut rng);
                prop_assert!(g.check_invariants());
                prop_assert_eq!(truth.structural_nodes().len(), p * q);
            }

            #[test]
            fn replacement_injection_preserves_outlier_degrees(seed in 0u64..200) {
                let mut rng = seeded_rng(seed);
                let mut g = base_graph(200, &mut rng);
                let degrees_before: Vec<usize> = (0..200u32).map(|u| g.degree(u)).collect();
                let edges_before = g.num_edges();
                let mut truth = GroundTruth::new(200);
                let chosen = inject_community_replacement(&mut g, &mut truth, 0.1, &mut rng);
                prop_assert!(g.check_invariants());
                // Every injected node keeps its exact pre-injection degree.
                for &u in &chosen {
                    prop_assert_eq!(g.degree(u), degrees_before[u as usize]);
                }
                // Total edge count stays close (chosen–chosen edges may be
                // split into two replacements; collisions may lose a few).
                let edges_after = g.num_edges() as f32;
                prop_assert!(edges_after >= 0.85 * edges_before as f32);
                prop_assert!(edges_after <= 1.15 * edges_before as f32);
            }
        }
    }
}
