//! # vgod-inject
//!
//! Outlier-injection machinery for benchmarking unsupervised node outlier
//! detection, reproducing every injection protocol of the VGOD paper:
//!
//! * the **standard** approach of Ding et al. (§IV-A1, §IV-B1): `p` cliques
//!   of `q` structural outliers, and `p·q` contextual outliers whose
//!   attribute vectors are swapped with the farthest of `k` candidates —
//!   the approach whose data-leakage the paper analyses;
//! * **varied-parameter** structural injection (§VI-C1): several groups of
//!   cliques with different sizes `q ∈ {3, 5, 10, 15}`;
//! * contextual injection with **cosine** instead of Euclidean distance
//!   (Fig. 3's mitigation study);
//! * the paper's **new degree-preserving injection** (§VI-D1): replace a
//!   node's neighbours with uniform samples from *other* communities, so
//!   node degree carries no label signal.
//!
//! Each routine mutates an [`AttributedGraph`] in place and records the
//! planted labels in a [`GroundTruth`].

#![warn(missing_docs)]

mod contextual;
mod structural;
mod truth;

pub use contextual::{
    inject_contextual, inject_contextual_noise, ContextualParams, DistanceMetric,
};
pub use structural::{
    inject_community_replacement, inject_structural, inject_structural_groups, StructuralGroup,
    StructuralParams,
};
pub use truth::{GroundTruth, OutlierKind};

use rand::Rng;
use vgod_graph::AttributedGraph;

/// The full standard injection protocol (§VI-B1): `p` cliques of size `q`
/// plus the same number (`p·q`) of contextual outliers with candidate-set
/// size `k`. Structural outliers are injected first, then contextual
/// outliers are drawn from the remaining normal nodes — matching the
/// reference implementation the paper runs ("we directly run the code in
/// \[16\] to inject outliers").
pub fn inject_standard(
    g: &mut AttributedGraph,
    structural: &StructuralParams,
    contextual: &ContextualParams,
    rng: &mut impl Rng,
) -> GroundTruth {
    let mut truth = GroundTruth::new(g.num_nodes());
    inject_structural(g, &mut truth, structural, rng);
    inject_contextual(g, &mut truth, contextual, rng);
    truth
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgod_graph::{community_graph, seeded_rng, CommunityGraphConfig};

    #[test]
    fn standard_injection_counts() {
        let mut rng = seeded_rng(0);
        let mut g = community_graph(
            &CommunityGraphConfig::homogeneous(300, 3, 4.0, 0.9),
            &mut rng,
        );
        let x = vgod_graph::gaussian_mixture_attributes(g.labels().unwrap(), 8, 4.0, 0.5, &mut rng);
        g.set_attrs(x);
        let truth = inject_standard(
            &mut g,
            &StructuralParams {
                num_cliques: 3,
                clique_size: 5,
            },
            &ContextualParams {
                count: 15,
                candidates: 10,
                metric: DistanceMetric::Euclidean,
            },
            &mut rng,
        );
        assert_eq!(truth.structural_nodes().len(), 15);
        assert_eq!(truth.contextual_nodes().len(), 15);
        assert_eq!(truth.outlier_mask().iter().filter(|&&o| o).count(), 30);
        assert!(g.check_invariants());
    }
}
