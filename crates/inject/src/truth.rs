//! Ground-truth bookkeeping for injected outliers.

/// The planted type of each node after injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutlierKind {
    /// Not an outlier.
    Normal,
    /// Structural outlier (abnormal links, §IV-A).
    Structural,
    /// Contextual outlier (corrupted attributes, §IV-B).
    Contextual,
}

/// Per-node outlier labels recorded during injection. Only used for
/// *evaluation* — detectors never see it.
#[derive(Clone, Debug)]
pub struct GroundTruth {
    kinds: Vec<OutlierKind>,
}

impl GroundTruth {
    /// All-normal ground truth over `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            kinds: vec![OutlierKind::Normal; n],
        }
    }

    /// Build directly from per-node kinds (used by the labeled Weibo-like
    /// dataset, whose outliers are generated rather than injected).
    pub fn from_kinds(kinds: Vec<OutlierKind>) -> Self {
        Self { kinds }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the ground truth covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The planted kind of node `u`.
    pub fn kind(&self, u: u32) -> OutlierKind {
        self.kinds[u as usize]
    }

    /// Mark node `u` (used by the injection routines).
    pub fn mark(&mut self, u: u32, kind: OutlierKind) {
        self.kinds[u as usize] = kind;
    }

    /// Whether node `u` is currently normal.
    pub fn is_normal(&self, u: u32) -> bool {
        self.kinds[u as usize] == OutlierKind::Normal
    }

    /// Boolean mask over all nodes: `true` for any outlier (`V⁻`).
    pub fn outlier_mask(&self) -> Vec<bool> {
        self.kinds
            .iter()
            .map(|&k| k != OutlierKind::Normal)
            .collect()
    }

    /// Boolean mask selecting only structural outliers (`V^str`).
    pub fn structural_mask(&self) -> Vec<bool> {
        self.kinds
            .iter()
            .map(|&k| k == OutlierKind::Structural)
            .collect()
    }

    /// Boolean mask selecting only contextual outliers (`V^attr`).
    pub fn contextual_mask(&self) -> Vec<bool> {
        self.kinds
            .iter()
            .map(|&k| k == OutlierKind::Contextual)
            .collect()
    }

    /// Ids of structural outliers.
    pub fn structural_nodes(&self) -> Vec<u32> {
        self.nodes_of(OutlierKind::Structural)
    }

    /// Ids of contextual outliers.
    pub fn contextual_nodes(&self) -> Vec<u32> {
        self.nodes_of(OutlierKind::Contextual)
    }

    /// Ids of normal nodes.
    pub fn normal_nodes(&self) -> Vec<u32> {
        self.nodes_of(OutlierKind::Normal)
    }

    fn nodes_of(&self, kind: OutlierKind) -> Vec<u32> {
        self.kinds
            .iter()
            .enumerate()
            .filter(|(_, &k)| k == kind)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Fraction of nodes that are outliers.
    pub fn outlier_ratio(&self) -> f32 {
        if self.kinds.is_empty() {
            0.0
        } else {
            self.kinds
                .iter()
                .filter(|&&k| k != OutlierKind::Normal)
                .count() as f32
                / self.kinds.len() as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_partition_nodes() {
        let mut t = GroundTruth::new(5);
        t.mark(1, OutlierKind::Structural);
        t.mark(3, OutlierKind::Contextual);
        assert_eq!(t.outlier_mask(), vec![false, true, false, true, false]);
        assert_eq!(t.structural_nodes(), vec![1]);
        assert_eq!(t.contextual_nodes(), vec![3]);
        assert_eq!(t.normal_nodes(), vec![0, 2, 4]);
        assert!((t.outlier_ratio() - 0.4).abs() < 1e-6);
        for u in 0..5u32 {
            let in_any = t.outlier_mask()[u as usize];
            let in_s = t.structural_mask()[u as usize];
            let in_c = t.contextual_mask()[u as usize];
            assert_eq!(in_any, in_s || in_c);
            assert!(!(in_s && in_c));
        }
    }
}
