//! Minimal aligned-text table writer (keeps `serde` out of the workspace).

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row of pre-formatted cells.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Append a row of `(label, f32 values)` with 4-decimal formatting.
    pub fn metric_row(&mut self, label: &str, values: &[f32]) -> &mut Self {
        let mut cells = Vec::with_capacity(values.len() + 1);
        cells.push(label.to_string());
        cells.extend(values.iter().map(|v| format!("{v:.4}")));
        self.row(cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Look up a cell by row label (first column) and column header.
    pub fn cell(&self, row_label: &str, column: &str) -> Option<&str> {
        let col = self.headers.iter().position(|h| h == column)?;
        let row = self.rows.iter().find(|r| r[0] == row_label)?;
        row.get(col).map(String::as_str)
    }

    /// Render with column alignment.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                for _ in cell.chars().count()..widths[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["model", "cora", "citeseer"]);
        t.metric_row("VGOD", &[0.9503, 0.9845]);
        t.metric_row("A-very-long-name", &[0.5, 0.25]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Columns align: the 0.9503 and 0.5000 cells start at the same offset.
        let pos1 = lines[2].find("0.9503").unwrap();
        let pos2 = lines[3].find("0.5000").unwrap();
        assert_eq!(pos1 > 0, pos2 > 0);
        assert_eq!(t.cell("VGOD", "cora"), Some("0.9503"));
        assert_eq!(t.cell("VGOD", "missing"), None);
        assert_eq!(t.cell("missing", "cora"), None);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        Table::new(&["a", "b"]).row(vec!["only-one".into()]);
    }
}
