//! # vgod-bench
//!
//! The experiment harness that regenerates **every table and figure** of
//! the VGOD paper's evaluation (§VI and Appendix A/B). Each `benches/exp_*`
//! target is a thin `main` around one of the [`experiments`] runners; run
//! them all with `cargo bench`, or one with e.g.
//! `cargo bench --bench exp_unod`.
//!
//! Environment knobs (all optional):
//!
//! * `VGOD_SCALE` — `tiny | small | medium | paper` (default `small`):
//!   dataset replica scale; see `vgod-datasets`.
//! * `VGOD_SEED` — base RNG seed (default 42).
//! * `VGOD_RUNS` — repetitions averaged per cell (default 1; the paper
//!   averages 5).
//!
//! Each runner prints aligned text tables with the paper's reported
//! numbers alongside the measured ones where applicable; EXPERIMENTS.md
//! records a full paper-vs-measured comparison.

#![warn(missing_docs)]

pub mod experiments;
mod table;
mod zoo;

pub use table::Table;
pub use zoo::{deep_config_for, detector_zoo, vgod_config_for, DetectorKind};

use vgod_datasets::Scale;

/// Replica scale from `VGOD_SCALE` (default [`Scale::Small`]).
pub fn scale_from_env() -> Scale {
    std::env::var("VGOD_SCALE")
        .ok()
        .and_then(|s| Scale::from_env_str(&s))
        .unwrap_or(Scale::Small)
}

/// Base seed from `VGOD_SEED` (default 42).
pub fn seed_from_env() -> u64 {
    std::env::var("VGOD_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Repetitions per cell from `VGOD_RUNS` (default 1).
pub fn runs_from_env() -> usize {
    std::env::var("VGOD_RUNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
        .max(1)
}

/// Standard banner printed by every bench target.
pub fn banner(title: &str, paper_ref: &str) {
    println!();
    println!("=== {title} ===");
    println!("reproduces: {paper_ref}");
    println!(
        "scale = {}, seed = {}, runs = {}",
        scale_from_env(),
        seed_from_env(),
        runs_from_env()
    );
    println!();
}
