//! Detector construction with per-scale hyperparameters.

use vgod::{ArmConfig, CombineStrategy, GnnBackbone, VbmConfig, Vgod, VgodConfig};
use vgod_baselines::{AnomalyDae, Cola, Conad, DeepConfig, DegNorm, Dominant, Done};
use vgod_datasets::{Dataset, Scale};
use vgod_eval::OutlierDetector;

/// The detectors compared in the UNOD experiment (Table III/IV row order).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DetectorKind {
    /// DOMINANT (Ding et al.).
    Dominant,
    /// AnomalyDAE (Fan et al.).
    AnomalyDae,
    /// DONE (Bandyopadhyay et al.).
    Done,
    /// CoLA (Liu et al.).
    Cola,
    /// CONAD (Xu et al.).
    Conad,
    /// DegNorm — the leakage-only baseline (Eq. 20).
    DegNorm,
    /// VGOD — the paper's method.
    Vgod,
}

impl DetectorKind {
    /// Table III/IV row order.
    pub const ALL: [DetectorKind; 7] = [
        DetectorKind::Dominant,
        DetectorKind::AnomalyDae,
        DetectorKind::Done,
        DetectorKind::Cola,
        DetectorKind::Conad,
        DetectorKind::DegNorm,
        DetectorKind::Vgod,
    ];

    /// Detectors capable of inductive inference (Table II: AnomalyDAE is
    /// excluded — its attribute encoder is tied to `|V|`).
    pub const INDUCTIVE: [DetectorKind; 6] = [
        DetectorKind::Dominant,
        DetectorKind::Done,
        DetectorKind::Cola,
        DetectorKind::Conad,
        DetectorKind::DegNorm,
        DetectorKind::Vgod,
    ];
}

/// Shared deep-baseline hyperparameters for a replica scale.
pub fn deep_config_for(scale: Scale, seed: u64) -> DeepConfig {
    let (hidden, epochs) = match scale {
        Scale::Tiny => (16, 25),
        Scale::Small => (32, 40),
        Scale::Medium => (64, 60),
        Scale::Paper => (64, 80),
    };
    DeepConfig {
        hidden,
        epochs,
        lr: 0.005,
        seed,
    }
}

/// VGOD hyperparameters for a dataset at a scale, following §VI-B2: GAT
/// backbone, self-loop edges on the small-average-degree datasets (the
/// citation networks and Weibo), row normalisation and a higher learning
/// rate on Weibo.
pub fn vgod_config_for(ds: Dataset, scale: Scale, seed: u64) -> VgodConfig {
    let hidden = match scale {
        Scale::Tiny => 32,
        Scale::Small => 64,
        Scale::Medium | Scale::Paper => 128,
    };
    // The paper trains ARM for 100 epochs on the full-size datasets; on
    // reduced replicas the same budget overfits (reconstruction memorises
    // the swapped-in vectors), so the budget scales with the replica.
    let arm_epochs = match scale {
        Scale::Tiny => 40,
        Scale::Small => 50,
        Scale::Medium => 80,
        Scale::Paper => 100,
    };
    let self_loops = !matches!(ds, Dataset::FlickrLike);
    let (lr, row_normalize) = if ds == Dataset::WeiboLike {
        (0.01, true)
    } else {
        (0.005, false)
    };
    VgodConfig {
        vbm: VbmConfig {
            hidden_dim: hidden,
            epochs: 10,
            lr,
            self_loops,
            seed,
        },
        arm: ArmConfig {
            hidden_dim: hidden,
            layers: 2,
            backbone: GnnBackbone::Gat,
            epochs: arm_epochs,
            lr,
            row_normalize,
            seed: seed.wrapping_add(1),
        },
        combine: CombineStrategy::MeanStd,
        num_threads: None,
    }
}

/// Build one detector for a dataset/scale/seed.
pub fn detector_zoo(
    kind: DetectorKind,
    ds: Dataset,
    scale: Scale,
    seed: u64,
) -> Box<dyn OutlierDetector> {
    let cfg = deep_config_for(scale, seed);
    match kind {
        DetectorKind::Dominant => Box::new(Dominant::new(cfg)),
        DetectorKind::AnomalyDae => Box::new(AnomalyDae::new(cfg)),
        DetectorKind::Done => Box::new(Done::new(cfg)),
        DetectorKind::Cola => Box::new(Cola::new(cfg)),
        DetectorKind::Conad => Box::new(Conad::new(cfg)),
        DetectorKind::DegNorm => Box::new(DegNorm),
        DetectorKind::Vgod => Box::new(Vgod::new(vgod_config_for(ds, scale, seed))),
    }
}

impl std::fmt::Display for DetectorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DetectorKind::Dominant => "Dominant",
            DetectorKind::AnomalyDae => "AnomalyDAE",
            DetectorKind::Done => "DONE",
            DetectorKind::Cola => "CoLA",
            DetectorKind::Conad => "CONAD",
            DetectorKind::DegNorm => "DegNorm",
            DetectorKind::Vgod => "VGOD",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_builds_every_detector() {
        for kind in DetectorKind::ALL {
            let det = detector_zoo(kind, Dataset::CoraLike, Scale::Tiny, 0);
            assert_eq!(det.name().to_lowercase(), kind.to_string().to_lowercase());
        }
    }

    #[test]
    fn vgod_config_follows_paper_rules() {
        let weibo = vgod_config_for(Dataset::WeiboLike, Scale::Paper, 0);
        assert_eq!(weibo.vbm.lr, 0.01);
        assert!(weibo.arm.row_normalize);
        assert!(weibo.vbm.self_loops);
        let flickr = vgod_config_for(Dataset::FlickrLike, Scale::Paper, 0);
        assert!(
            !flickr.vbm.self_loops,
            "self-loop is skipped on high-degree Flickr"
        );
        assert_eq!(flickr.vbm.hidden_dim, 128);
    }
}
