//! **Table XIII** (AUC) and **Table XIV** (AucGap) — Appendix A: the score
//! combination ablation (mean-std vs fixed-weight vs sum-to-unit).

use vgod::{CombineStrategy, Vgod};
use vgod_datasets::{Dataset, Scale};
use vgod_eval::{auc, auc_gap, auc_subset, OutlierDetector};

use super::injected_replica;
use crate::Table;

/// The strategies ablated (the weighted variant uses α = 0.5).
pub const STRATEGIES: [(&str, CombineStrategy); 3] = [
    ("VGOD (mean-std)", CombineStrategy::MeanStd),
    ("VGOD (weight)", CombineStrategy::Weighted(0.5)),
    ("VGOD (sum-to-unit)", CombineStrategy::SumToUnit),
];

/// Run the ablation; returns (AUC table over 5 datasets, AucGap table over
/// the injected 4).
pub fn run(scale: Scale, seed: u64, runs: usize) -> (Table, Table) {
    let mut auc_headers = vec!["model".to_string()];
    auc_headers.extend(Dataset::ALL.iter().map(|d| d.to_string()));
    let refs: Vec<&str> = auc_headers.iter().map(String::as_str).collect();
    let mut auc_table = Table::new(&refs);

    let mut gap_headers = vec!["model".to_string()];
    gap_headers.extend(Dataset::INJECTED.iter().map(|d| d.to_string()));
    let refs: Vec<&str> = gap_headers.iter().map(String::as_str).collect();
    let mut gap_table = Table::new(&refs);

    for (name, strategy) in STRATEGIES {
        let mut auc_row = Vec::new();
        let mut gap_row = Vec::new();
        for ds in Dataset::ALL {
            let mut a_sum = 0.0;
            let mut gap_sum = 0.0;
            for r in 0..runs {
                let run_seed = seed + r as u64;
                let (g, truth) = injected_replica(ds, scale, run_seed);
                let mut cfg = crate::vgod_config_for(ds, scale, run_seed);
                cfg.combine = strategy;
                let mut model = Vgod::new(cfg);
                let scores = model.fit_score(&g);
                a_sum += auc(&scores.combined, &truth.outlier_mask());
                if ds != Dataset::WeiboLike {
                    let s = auc_subset(&scores.combined, &truth.structural_mask());
                    let c = auc_subset(&scores.combined, &truth.contextual_mask());
                    gap_sum += auc_gap(s, c);
                }
            }
            auc_row.push(a_sum / runs as f32);
            if ds != Dataset::WeiboLike {
                gap_row.push(gap_sum / runs as f32);
            }
        }
        auc_table.metric_row(name, &auc_row);
        gap_table.metric_row(name, &gap_row);
        eprintln!("[score_combination] finished {name}");
    }

    println!("--- measured: AUC per combination strategy (Table XIII) ---");
    auc_table.print();
    super::print_paper_reference(
        "Table XIII",
        &["model", "cora", "citeseer", "pubmed", "flickr", "weibo"],
        &[
            ("VGOD (mean-std)", &[0.956, 0.987, 0.981, 0.883, 0.976]),
            ("VGOD (weight)", &[0.919, 0.859, 0.982, 0.729, 0.942]),
            ("VGOD (sum-to-unit)", &[0.935, 0.957, 0.981, 0.850, 0.970]),
        ],
    );
    println!("--- measured: AucGap per combination strategy (Table XIV) ---");
    gap_table.print();
    super::print_paper_reference(
        "Table XIV",
        &["model", "cora", "citeseer", "pubmed", "flickr"],
        &[
            ("VGOD (mean-std)", &[1.0680, 1.0268, 1.0211, 1.0672]),
            ("VGOD (weight)", &[1.0781, 1.3641, 1.0095, 1.9662]),
            ("VGOD (sum-to-unit)", &[1.1716, 1.1133, 1.0000, 1.2241]),
        ],
    );
    (auc_table, gap_table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_is_the_most_balanced_on_average() {
        let (_, gap_t) = run(Scale::Tiny, 61, 1);
        let mean_gap = |model: &str| -> f32 {
            ["cora", "citeseer", "pubmed", "flickr"]
                .iter()
                .map(|ds| gap_t.cell(model, ds).unwrap().parse::<f32>().unwrap())
                .sum::<f32>()
                / 4.0
        };
        let mean_std = mean_gap("VGOD (mean-std)");
        let weighted = mean_gap("VGOD (weight)");
        assert!(
            mean_std <= weighted + 0.05,
            "mean-std gap {mean_std} should not exceed fixed-weight gap {weighted}"
        );
    }
}
