//! **Table V** and **Fig. 6** — structural outlier detection under varied
//! clique sizes `q ∈ {3, 5, 10, 15}`: overall `AUC(V⁻, O^str)` per model
//! (Table V) and the per-group AUC curves (Fig. 6).

use vgod::{Vbm, VbmConfig};
use vgod_baselines::Deg;
use vgod_datasets::{replica, Dataset, Scale};
use vgod_eval::{auc, auc_group_vs_normal, OutlierDetector};
use vgod_graph::{seeded_rng, AttributedGraph};
use vgod_inject::{inject_structural_groups, GroundTruth, StructuralGroup};

use crate::{detector_zoo, DetectorKind, Table};

/// The clique sizes of §VI-C1.
pub const CLIQUE_SIZES: [usize; 4] = [3, 5, 10, 15];

/// Fraction of nodes injected per group (2 % each, §VI-C1).
pub const GROUP_FRACTION: f32 = 0.02;

/// Models compared (the paper drops CONAD here — "we fail to get a
/// reasonable result for CONAD" — and adds the plain `Deg` probe).
const MODELS: [DetectorKind; 4] = [
    DetectorKind::Dominant,
    DetectorKind::AnomalyDae,
    DetectorKind::Done,
    DetectorKind::Cola,
];

/// Build a structural-only multi-group injection of `ds`.
pub(crate) fn injected_groups(
    ds: Dataset,
    scale: Scale,
    seed: u64,
) -> (AttributedGraph, GroundTruth, Vec<StructuralGroup>) {
    let mut rng = seeded_rng(seed);
    let mut r = replica(ds, scale, &mut rng);
    let mut truth = GroundTruth::new(r.graph.num_nodes());
    let groups = inject_structural_groups(
        &mut r.graph,
        &mut truth,
        &CLIQUE_SIZES,
        GROUP_FRACTION,
        &mut rng,
    );
    (r.graph, truth, groups)
}

/// VBM configured as in the UNOD experiment (self-loops per dataset rule).
pub(crate) fn vbm_for(ds: Dataset, scale: Scale, seed: u64) -> Vbm {
    let base = crate::vgod_config_for(ds, scale, seed);
    Vbm::new(VbmConfig {
        epochs: 20,
        ..base.vbm
    })
}

/// Run the experiment. Prints Table V (overall structural AUC) and the
/// Fig. 6 per-clique-size series; returns (Table V, Fig 6 table).
pub fn run(scale: Scale, seed: u64, runs: usize) -> (Table, Table) {
    let datasets = Dataset::INJECTED;
    let mut headers = vec!["model".to_string()];
    headers.extend(datasets.iter().map(|d| d.to_string()));
    let refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut overall = Table::new(&refs);

    let mut fig6_headers = vec!["model/dataset".to_string()];
    fig6_headers.extend(CLIQUE_SIZES.iter().map(|q| format!("q={q}")));
    let refs: Vec<&str> = fig6_headers.iter().map(String::as_str).collect();
    let mut fig6 = Table::new(&refs);

    /// Trains/scores one model on one run's graph.
    type ScoreFn = Box<dyn FnMut(Dataset, u64, &AttributedGraph) -> vgod_eval::Scores>;
    // model → per-dataset overall AUC; model×dataset → per-q AUCs. Deep
    // models return full `Scores`; §VI-C2's rule ("adopt the score with the
    // highest AUC as its structural score") picks the best vector.
    let mut eval_model = |name: &str, mut score_fn: ScoreFn| {
        let mut overall_row = Vec::new();
        for &ds in &datasets {
            let mut sum_overall = 0.0f32;
            let mut sum_groups = vec![0.0f32; CLIQUE_SIZES.len()];
            for r in 0..runs {
                let run_seed = seed + r as u64;
                let (g, truth, groups) = injected_groups(ds, scale, run_seed);
                let any = truth.outlier_mask();
                let scores = score_fn(ds, run_seed, &g);
                let s = super::best_scores_vector(&scores, &any);
                sum_overall += auc(&s, &any);
                for (i, gr) in groups.iter().enumerate() {
                    sum_groups[i] += auc_group_vs_normal(&s, &gr.members, &any);
                }
            }
            overall_row.push(sum_overall / runs as f32);
            let per_q: Vec<f32> = sum_groups.iter().map(|v| v / runs as f32).collect();
            fig6.metric_row(&format!("{name}/{ds}"), &per_q);
        }
        overall.metric_row(name, &overall_row);
        eprintln!("[varied_q] finished {name}");
    };

    for kind in MODELS {
        eval_model(
            &kind.to_string(),
            Box::new(move |ds, run_seed, g| {
                let mut det = detector_zoo(kind, ds, scale, run_seed);
                det.fit(g);
                det.score(g)
            }),
        );
    }
    eval_model("Deg", Box::new(|_, _, g| Deg.score(g)));
    eval_model(
        "VBM",
        Box::new(move |ds, run_seed, g| {
            let mut vbm = vbm_for(ds, scale, run_seed);
            OutlierDetector::fit(&mut vbm, g);
            OutlierDetector::score(&vbm, g)
        }),
    );

    println!("--- measured: overall AUC(V⁻, O^str) (Table V) ---");
    overall.print();
    super::print_paper_reference(
        "Table V",
        &["model", "cora", "citeseer", "pubmed", "flickr"],
        &[
            ("Dominant", &[0.9227, 0.9467, 0.8878, 0.5715]),
            ("AnomalyDAE", &[0.9127, 0.9219, 0.8968, 0.6253]),
            ("DONE", &[0.9034, 0.8985, 0.8868, 0.5516]),
            ("CoLA", &[0.8073, 0.8919, 0.8698, 0.5712]),
            ("Deg", &[0.9467, 0.9541, 0.9333, 0.5671]),
            ("VBM", &[0.9815, 0.9816, 0.9893, 0.8003]),
        ],
    );
    println!("--- measured: per-clique-size AUC series (Fig. 6) ---");
    fig6.print();
    println!(
        "paper finding: every model degrades as q shrinks; VBM declines the least and wins at \
         every q."
    );
    (overall, fig6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vbm_wins_and_degrades_least() {
        let (overall, fig6) = run(Scale::Tiny, 13, 1);
        // VBM beats Deg and the deep baselines on at least 3 of 4 datasets.
        let mut wins = 0;
        for ds in ["cora", "citeseer", "pubmed", "flickr"] {
            let vbm: f32 = overall.cell("VBM", ds).unwrap().parse().unwrap();
            let best_other = ["Dominant", "AnomalyDAE", "DONE", "CoLA", "Deg"]
                .iter()
                .map(|m| overall.cell(m, ds).unwrap().parse::<f32>().unwrap())
                .fold(0.0f32, f32::max);
            if vbm >= best_other {
                wins += 1;
            }
        }
        assert!(wins >= 3, "VBM should lead on most datasets (won {wins}/4)");
        // Fig 6 shape: VBM's q=15 AUC ≥ its q=3 AUC (bigger cliques easier).
        let q3: f32 = fig6.cell("VBM/cora", "q=3").unwrap().parse().unwrap();
        let q15: f32 = fig6.cell("VBM/cora", "q=15").unwrap().parse().unwrap();
        assert!(
            q15 >= q3 - 0.05,
            "q=15 ({q15}) should not be easier than q=3 ({q3})"
        );
    }
}
