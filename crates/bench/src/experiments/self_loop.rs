//! **Table XI** (VBM on contextual-only injection, with and without the
//! self-loop edge) and **Table XII** (full VGOD with and without the
//! self-loop edge on the UNOD experiment) — the self-loop-edge ablation
//! (§VI-E5).

use vgod::{Vbm, VbmConfig, Vgod};
use vgod_datasets::{injection_params, replica, Dataset, Scale};
use vgod_eval::{auc, OutlierDetector};
use vgod_graph::seeded_rng;
use vgod_inject::{inject_contextual, GroundTruth};

use super::{injected_replica, mean_over_runs};
use crate::Table;

/// Table XI: VBM alone on contextual-only injection.
pub fn run_vbm_contextual(scale: Scale, seed: u64, runs: usize) -> Table {
    let datasets = Dataset::INJECTED;
    let mut headers = vec!["model".to_string()];
    headers.extend(datasets.iter().map(|d| d.to_string()));
    let refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&refs);

    for self_loops in [false, true] {
        let row: Vec<f32> = datasets
            .iter()
            .map(|&ds| {
                mean_over_runs(runs, |r| {
                    let run_seed = seed + r as u64;
                    let mut rng = seeded_rng(run_seed);
                    let mut rep = replica(ds, scale, &mut rng);
                    let (_, cp) = injection_params(ds, scale);
                    let mut truth = GroundTruth::new(rep.graph.num_nodes());
                    inject_contextual(&mut rep.graph, &mut truth, &cp, &mut rng);
                    let base = crate::vgod_config_for(ds, scale, run_seed);
                    let mut vbm = Vbm::new(VbmConfig {
                        self_loops,
                        ..base.vbm
                    });
                    OutlierDetector::fit(&mut vbm, &rep.graph);
                    auc(&vbm.scores(&rep.graph), &truth.outlier_mask())
                })
            })
            .collect();
        table.metric_row(if self_loops { "VBM w/ SL" } else { "VBM" }, &row);
    }
    println!("--- measured: VBM on contextual-only injection (Table XI) ---");
    table.print();
    super::print_paper_reference(
        "Table XI",
        &["model", "cora", "citeseer", "pubmed", "flickr"],
        &[
            ("VBM", &[0.5026, 0.5128, 0.4883, 0.4725]),
            ("VBM w/ SL", &[0.7978, 0.8567, 0.8364, 0.6463]),
        ],
    );
    table
}

/// Table XII: the full framework with and without the self-loop edge on
/// the UNOD experiment (all five datasets).
pub fn run_vgod_ablation(scale: Scale, seed: u64, runs: usize) -> Table {
    let mut headers = vec!["model".to_string()];
    headers.extend(Dataset::ALL.iter().map(|d| d.to_string()));
    let refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&refs);

    for self_loops in [false, true] {
        let row: Vec<f32> = Dataset::ALL
            .iter()
            .map(|&ds| {
                mean_over_runs(runs, |r| {
                    let run_seed = seed + r as u64;
                    let (g, truth) = injected_replica(ds, scale, run_seed);
                    let mut cfg = crate::vgod_config_for(ds, scale, run_seed);
                    cfg.vbm.self_loops = self_loops;
                    let mut model = Vgod::new(cfg);
                    let scores = model.fit_score(&g);
                    auc(&scores.combined, &truth.outlier_mask())
                })
            })
            .collect();
        table.metric_row(if self_loops { "VGOD w/ SL" } else { "VGOD" }, &row);
        eprintln!("[self_loop] finished VGOD sl={self_loops}");
    }
    println!("--- measured: VGOD self-loop ablation on UNOD (Table XII) ---");
    table.print();
    super::print_paper_reference(
        "Table XII",
        &["model", "cora", "citeseer", "pubmed", "flickr", "weibo"],
        &[
            ("VGOD", &[0.8911, 0.9485, 0.9592, 0.8773, 0.9707]),
            ("VGOD w/ SL", &[0.9503, 0.9845, 0.9813, 0.8313, 0.9765]),
        ],
    );
    table
}

/// Run both halves of §VI-E5.
pub fn run(scale: Scale, seed: u64, runs: usize) -> (Table, Table) {
    (
        run_vbm_contextual(scale, seed, runs),
        run_vgod_ablation(scale, seed, runs),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_loop_unlocks_contextual_detection_for_vbm() {
        let t = run_vbm_contextual(Scale::Tiny, 41, 1);
        for ds in ["cora", "citeseer", "pubmed"] {
            let plain: f32 = t.cell("VBM", ds).unwrap().parse().unwrap();
            let with_sl: f32 = t.cell("VBM w/ SL", ds).unwrap().parse().unwrap();
            // Without self-loops VBM is blind to contextual outliers
            // (≈ 0.5); with them it gains real detection power.
            assert!((0.3..0.7).contains(&plain), "{ds}: plain VBM {plain}");
            assert!(
                with_sl > plain + 0.1,
                "{ds}: SL should help ({plain} → {with_sl})"
            );
        }
    }
}
