//! **Fig. 3** — mitigation study for contextual-injection leakage: AUC of
//! the L2-norm probe as the candidate-set size `k` shrinks, and with cosine
//! distance replacing Euclidean distance.

use vgod_baselines::L2Norm;
use vgod_datasets::{injection_params, replica, Dataset, Scale};
use vgod_eval::{auc, OutlierDetector};
use vgod_graph::seeded_rng;
use vgod_inject::{inject_contextual, ContextualParams, DistanceMetric, GroundTruth};

use super::mean_over_runs;
use crate::Table;

/// Candidate-set sizes swept (the paper varies k from small to 50).
pub const K_VALUES: [usize; 5] = [1, 5, 10, 25, 50];

/// AUC of the L2-norm probe after contextual-only injection with the given
/// `k` and metric.
fn probe_auc(ds: Dataset, scale: Scale, k: usize, metric: DistanceMetric, seed: u64) -> f32 {
    let mut rng = seeded_rng(seed);
    let mut r = replica(ds, scale, &mut rng);
    let (_, cp) = injection_params(ds, scale);
    let params = ContextualParams {
        count: cp.count * 2,
        candidates: k,
        metric,
    };
    let mut truth = GroundTruth::new(r.graph.num_nodes());
    inject_contextual(&mut r.graph, &mut truth, &params, &mut rng);
    auc(&L2Norm.score(&r.graph).combined, &truth.outlier_mask())
}

/// Run the sweep and print/return the table (rows = dataset × metric,
/// columns = k).
pub fn run(scale: Scale, seed: u64, runs: usize) -> Table {
    let mut headers: Vec<String> = vec!["dataset/metric".into()];
    headers.extend(K_VALUES.iter().map(|k| format!("k={k}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    for ds in Dataset::INJECTED {
        for metric in [DistanceMetric::Euclidean, DistanceMetric::Cosine] {
            let row: Vec<f32> = K_VALUES
                .iter()
                .map(|&k| {
                    mean_over_runs(runs, |r| probe_auc(ds, scale, k, metric, seed + r as u64))
                })
                .collect();
            table.metric_row(&format!("{ds}/{metric}"), &row);
        }
    }
    table.print();
    println!(
        "paper finding: with Euclidean distance the AUC of the L2-norm probe rises toward ~0.98 \
         as k grows; with cosine distance the rise is absent or much weaker on most datasets."
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_leakage_grows_with_k() {
        let t = run(Scale::Tiny, 3, 1);
        for ds in ["cora", "citeseer"] {
            let small: f32 = t
                .cell(&format!("{ds}/euclidean"), "k=1")
                .unwrap()
                .parse()
                .unwrap();
            let large: f32 = t
                .cell(&format!("{ds}/euclidean"), "k=50")
                .unwrap()
                .parse()
                .unwrap();
            assert!(
                large > small + 0.1,
                "{ds}: leakage should grow with k (k=1 → {small}, k=50 → {large})"
            );
            assert!(large > 0.8, "{ds}: k=50 Euclidean AUC {large}");
        }
    }

    #[test]
    fn cosine_mitigates_leakage() {
        let t = run(Scale::Tiny, 4, 1);
        for ds in ["cora", "citeseer", "pubmed"] {
            let euc: f32 = t
                .cell(&format!("{ds}/euclidean"), "k=50")
                .unwrap()
                .parse()
                .unwrap();
            let cos: f32 = t
                .cell(&format!("{ds}/cosine"), "k=50")
                .unwrap()
                .parse()
                .unwrap();
            assert!(
                cos < euc,
                "{ds}: cosine ({cos}) should leak less than Euclidean ({euc})"
            );
        }
    }
}
