//! **Fig. 8** — AUC trend of the variance-based model during training, per
//! clique-size group: high already at epoch 0, peaks within a few epochs,
//! then slowly declines from overfitting (smaller cliques overfit later).

use vgod::{Vbm, VbmConfig};
use vgod_datasets::{Dataset, Scale};
use vgod_eval::auc_group_vs_normal;

use super::varied_q::injected_groups;
use crate::Table;

/// Epochs tracked.
pub const EPOCHS: usize = 20;

/// Run the trend experiment on one dataset (the paper plots Cora/Citeseer/
/// PubMed/Flickr; bench targets loop datasets). Returns the table with one
/// row per epoch and one column per clique-size group.
pub fn run_dataset(ds: Dataset, scale: Scale, seed: u64) -> Table {
    let (g, truth, groups) = injected_groups(ds, scale, seed);
    let base = crate::vgod_config_for(ds, scale, seed);
    let mut vbm = Vbm::new(VbmConfig {
        epochs: EPOCHS,
        ..base.vbm
    });

    let mut headers = vec!["epoch".to_string()];
    headers.extend(groups.iter().map(|gr| format!("q={}", gr.clique_size)));
    let refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&refs);

    let any = truth.outlier_mask();
    vbm.fit_with_callback(&g, |snap| {
        let row: Vec<f32> = groups
            .iter()
            .map(|gr| auc_group_vs_normal(&snap.scores, &gr.members, &any))
            .collect();
        table.metric_row(&snap.epoch.to_string(), &row);
    });
    println!("--- measured: VBM AUC per epoch on {ds} (Fig. 8) ---");
    table.print();
    table
}

/// Run across the four injected datasets.
pub fn run(scale: Scale, seed: u64) -> Vec<Table> {
    let out = Dataset::INJECTED
        .iter()
        .map(|&ds| run_dataset(ds, scale, seed))
        .collect();
    println!(
        "paper finding: the AUC starts high, peaks after a few epochs, and decays slowly \
         (overfitting); smaller clique sizes peak/decay later."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trend_starts_high_and_trains_fast() {
        let t = run_dataset(Dataset::CoraLike, Scale::Tiny, 17);
        assert_eq!(t.len(), EPOCHS + 1);
        // Large-clique detection is already strong within the first few
        // epochs (Fig. 8's "reaches the peak after only a few epochs").
        let peak_early: f32 = (0..=5)
            .map(|e| {
                t.cell(&e.to_string(), "q=15")
                    .unwrap()
                    .parse::<f32>()
                    .unwrap()
            })
            .fold(0.0, f32::max);
        assert!(peak_early > 0.8, "early peak {peak_early}");
    }
}
