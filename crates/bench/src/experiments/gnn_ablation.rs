//! **Table VIII** (AUC) and **Table IX** (AucGap) — the effect of the GNN
//! backbone (GIN / GCN / GAT) inside ARM, under the UNOD experiment.

use vgod::{GnnBackbone, Vgod};
use vgod_datasets::{Dataset, Scale};
use vgod_eval::{auc, auc_gap, auc_subset, OutlierDetector};

use super::injected_replica;
use crate::Table;

/// The backbones ablated by the paper.
pub const BACKBONES: [GnnBackbone; 3] = [GnnBackbone::Gin, GnnBackbone::Gcn, GnnBackbone::Gat];

/// Run the ablation; returns (AUC table over 5 datasets, AucGap table over
/// the 4 injected datasets).
pub fn run(scale: Scale, seed: u64, runs: usize) -> (Table, Table) {
    let mut auc_headers = vec!["model".to_string()];
    auc_headers.extend(Dataset::ALL.iter().map(|d| d.to_string()));
    let refs: Vec<&str> = auc_headers.iter().map(String::as_str).collect();
    let mut auc_table = Table::new(&refs);

    let mut gap_headers = vec!["model".to_string()];
    gap_headers.extend(Dataset::INJECTED.iter().map(|d| d.to_string()));
    let refs: Vec<&str> = gap_headers.iter().map(String::as_str).collect();
    let mut gap_table = Table::new(&refs);

    for backbone in BACKBONES {
        let mut auc_row = Vec::new();
        let mut gap_row = Vec::new();
        for ds in Dataset::ALL {
            let mut a_sum = 0.0;
            let mut gap_sum = 0.0;
            for r in 0..runs {
                let run_seed = seed + r as u64;
                let (g, truth) = injected_replica(ds, scale, run_seed);
                let mut cfg = crate::vgod_config_for(ds, scale, run_seed);
                cfg.arm.backbone = backbone;
                let mut model = Vgod::new(cfg);
                let scores = model.fit_score(&g);
                a_sum += auc(&scores.combined, &truth.outlier_mask());
                if ds != Dataset::WeiboLike {
                    let s = auc_subset(&scores.combined, &truth.structural_mask());
                    let c = auc_subset(&scores.combined, &truth.contextual_mask());
                    gap_sum += auc_gap(s, c);
                }
            }
            auc_row.push(a_sum / runs as f32);
            if ds != Dataset::WeiboLike {
                gap_row.push(gap_sum / runs as f32);
            }
        }
        auc_table.metric_row(&format!("VGOD ({backbone})"), &auc_row);
        gap_table.metric_row(&format!("VGOD ({backbone})"), &gap_row);
        eprintln!("[gnn_ablation] finished {backbone}");
    }

    println!("--- measured: AUC per ARM backbone (Table VIII) ---");
    auc_table.print();
    super::print_paper_reference(
        "Table VIII",
        &["model", "cora", "citeseer", "pubmed", "flickr", "weibo"],
        &[
            ("VGOD (GIN)", &[0.9503, 0.9845, 0.9801, 0.8773, 0.9093]),
            ("VGOD (GCN)", &[0.9566, 0.9867, 0.9802, 0.8735, 0.9154]),
            ("VGOD (GAT)", &[0.9560, 0.9868, 0.9813, 0.8835, 0.9765]),
        ],
    );
    println!("--- measured: AucGap per ARM backbone (Table IX) ---");
    gap_table.print();
    super::print_paper_reference(
        "Table IX",
        &["model", "cora", "citeseer", "pubmed", "flickr"],
        &[
            ("VGOD (GIN)", &[1.0716, 1.0261, 1.0215, 1.0655]),
            ("VGOD (GCN)", &[1.0637, 1.0278, 1.0214, 1.0713]),
            ("VGOD (GAT)", &[1.0680, 1.0268, 1.0211, 1.0672]),
        ],
    );
    (auc_table, gap_table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backbones_are_comparable_on_injected_datasets() {
        let (auc_t, _) = run(Scale::Tiny, 23, 1);
        // Paper: on the injected datasets the three backbones score within
        // a small band of each other.
        for ds in ["cora", "citeseer"] {
            let values: Vec<f32> = ["VGOD (GIN)", "VGOD (GCN)", "VGOD (GAT)"]
                .iter()
                .map(|m| auc_t.cell(m, ds).unwrap().parse().unwrap())
                .collect();
            let min = values.iter().cloned().fold(f32::INFINITY, f32::min);
            let max = values.iter().cloned().fold(0.0f32, f32::max);
            assert!(min > 0.7, "{ds}: weakest backbone {min}");
            assert!(max - min < 0.2, "{ds}: backbone spread {min}..{max}");
        }
    }
}
