//! **Table VI** — structural outlier detection under the paper's new
//! degree-preserving injection approach (§VI-D): neighbours replaced by
//! uniform samples from other communities, 10 % of nodes injected.

use vgod_datasets::{replica, Dataset, Scale};
use vgod_eval::{auc, OutlierDetector};
use vgod_graph::seeded_rng;
use vgod_inject::{inject_community_replacement, GroundTruth};

use super::mean_over_runs;
use crate::{detector_zoo, DetectorKind, Table};

/// Outlier fraction of §VI-D1.
pub const OUTLIER_FRACTION: f32 = 0.10;

const MODELS: [DetectorKind; 5] = [
    DetectorKind::Dominant,
    DetectorKind::AnomalyDae,
    DetectorKind::Done,
    DetectorKind::Cola,
    DetectorKind::Conad,
];

/// Run the experiment; prints and returns the AUC table.
pub fn run(scale: Scale, seed: u64, runs: usize) -> Table {
    let datasets = Dataset::INJECTED;
    let mut headers = vec!["model".to_string()];
    headers.extend(datasets.iter().map(|d| d.to_string()));
    let refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&refs);

    let injected = |ds, run_seed: u64| {
        let mut rng = seeded_rng(run_seed);
        let mut r = replica(ds, scale, &mut rng);
        let mut truth = GroundTruth::new(r.graph.num_nodes());
        inject_community_replacement(&mut r.graph, &mut truth, OUTLIER_FRACTION, &mut rng);
        (r.graph, truth)
    };

    for kind in MODELS {
        let row: Vec<f32> = datasets
            .iter()
            .map(|&ds| {
                mean_over_runs(runs, |r| {
                    let run_seed = seed + r as u64;
                    let (g, truth) = injected(ds, run_seed);
                    let mut det = detector_zoo(kind, ds, scale, run_seed);
                    det.fit(&g);
                    let scores = det.score(&g);
                    // Same §VI-C2 rule as the varied-q experiment: adopt
                    // the model's best-AUC score vector.
                    let mask = truth.outlier_mask();
                    auc(&super::best_scores_vector(&scores, &mask), &mask)
                })
            })
            .collect();
        table.metric_row(&kind.to_string(), &row);
        eprintln!("[new_injection] finished {kind}");
    }
    // VBM (trained exactly as in the varied-q experiment).
    let row: Vec<f32> = datasets
        .iter()
        .map(|&ds| {
            mean_over_runs(runs, |r| {
                let run_seed = seed + r as u64;
                let (g, truth) = injected(ds, run_seed);
                let mut vbm = super::varied_q::vbm_for(ds, scale, run_seed);
                OutlierDetector::fit(&mut vbm, &g);
                auc(&vbm.scores(&g), &truth.outlier_mask())
            })
        })
        .collect();
    table.metric_row("VBM", &row);

    println!("--- measured: AUC under the new injection approach (Table VI) ---");
    table.print();
    super::print_paper_reference(
        "Table VI",
        &["model", "cora", "citeseer", "pubmed", "flickr"],
        &[
            ("Dominant", &[0.838, 0.770, 0.853, 0.917]),
            ("AnomalyDAE", &[0.770, 0.673, 0.566, 0.898]),
            ("DONE", &[0.762, 0.664, 0.659, 0.541]),
            ("CoLA", &[0.658, 0.743, 0.752, 0.632]),
            ("CONAD", &[0.793, 0.770, 0.779, 0.495]),
            ("VBM", &[0.935, 0.907, 0.858, 0.958]),
        ],
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vbm_beats_baselines_without_degree_leakage() {
        let t = run(Scale::Tiny, 55, 1);
        let datasets = ["cora", "citeseer", "pubmed", "flickr"];
        let mean = |model: &str| -> f32 {
            datasets
                .iter()
                .map(|ds| t.cell(model, ds).unwrap().parse::<f32>().unwrap())
                .sum::<f32>()
                / datasets.len() as f32
        };
        for ds in datasets {
            let vbm: f32 = t.cell("VBM", ds).unwrap().parse().unwrap();
            assert!(vbm > 0.6, "{ds}: VBM AUC {vbm} should be well above random");
        }
        // At tiny scale single-dataset ordering is noisy; the robust claim
        // is the aggregate one (the bench target at larger scales shows
        // the per-dataset wins of Table VI).
        let vbm_mean = mean("VBM");
        for model in ["Dominant", "AnomalyDAE", "DONE", "CoLA", "CONAD"] {
            let other = mean(model);
            assert!(
                vbm_mean > other,
                "VBM mean {vbm_mean} should beat {model}'s {other}"
            );
        }
    }
}
