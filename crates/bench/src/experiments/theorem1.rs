//! **Theorem 1** (§IV-B2) — empirical verification of the leakage
//! mechanism: for attribute vectors sampled independently from a
//! rank->1 population,
//!
//! `P( ‖x_c − x‖ > ‖x_c' − x‖  ⟹  ‖x_c‖ > ‖x_c'‖ ) > 0.5`
//!
//! i.e. the *farther* of two candidates tends to have the *larger* norm —
//! which is why max-Euclidean-distance candidate selection inflates the
//! L2-norms of injected contextual outliers. With cosine distance the
//! implication should hold only at chance level.

use rand::Rng;
use vgod_datasets::{replica, Dataset, Scale};
use vgod_graph::seeded_rng;
use vgod_inject::DistanceMetric;

use crate::Table;

/// Number of sampled (target, candidate, candidate) triples per cell.
pub const TRIPLES: usize = 20_000;

/// Estimate `P(farther candidate has larger norm)` on one dataset's
/// attribute population.
fn implication_probability(
    x: &vgod_tensor::Matrix,
    metric: DistanceMetric,
    rng: &mut impl Rng,
) -> f32 {
    let n = x.rows();
    let mut consistent = 0usize;
    let mut total = 0usize;
    let norm = |r: usize| -> f32 { x.row(r).iter().map(|v| v * v).sum::<f32>().sqrt() };
    while total < TRIPLES {
        let t = rng.gen_range(0..n);
        let c1 = rng.gen_range(0..n);
        let c2 = rng.gen_range(0..n);
        if c1 == c2 || c1 == t || c2 == t {
            continue;
        }
        let d1 = metric.distance(x.row(c1), x.row(t));
        let d2 = metric.distance(x.row(c2), x.row(t));
        if d1 == d2 {
            continue;
        }
        let (far, near) = if d1 > d2 { (c1, c2) } else { (c2, c1) };
        total += 1;
        if norm(far) > norm(near) {
            consistent += 1;
        }
    }
    consistent as f32 / total as f32
}

/// Run the verification across the four injected datasets' attribute
/// populations; rows = dataset, columns = metric.
pub fn run(scale: Scale, seed: u64) -> Table {
    let mut table = Table::new(&["dataset", "euclidean", "cosine"]);
    for ds in Dataset::INJECTED {
        let mut rng = seeded_rng(seed);
        let r = replica(ds, scale, &mut rng);
        let x = r.graph.attrs();
        let euc = implication_probability(x, DistanceMetric::Euclidean, &mut rng);
        let cos = implication_probability(x, DistanceMetric::Cosine, &mut rng);
        table.metric_row(&ds.to_string(), &[euc, cos]);
    }
    println!("--- measured: P(farther candidate has larger norm) (Theorem 1) ---");
    table.print();
    println!(
        "paper claim: strictly > 0.5 under Euclidean distance for any rank->1 attribute \
         population; cosine distance removes the norm bias."
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_implication_exceeds_half_cosine_does_not() {
        let t = run(Scale::Tiny, 3);
        for ds in ["cora", "citeseer", "pubmed", "flickr"] {
            let euc: f32 = t.cell(ds, "euclidean").unwrap().parse().unwrap();
            let cos: f32 = t.cell(ds, "cosine").unwrap().parse().unwrap();
            assert!(
                euc > 0.55,
                "{ds}: Euclidean implication prob {euc} should exceed 0.5"
            );
            assert!(
                cos < euc,
                "{ds}: cosine ({cos}) should be less norm-biased than Euclidean ({euc})"
            );
        }
    }
}
