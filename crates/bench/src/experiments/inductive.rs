//! **Table XV** (AUC) and **Table XVI** (AucGap) — Appendix B: the UNOD
//! experiment in the *inductive* setting: train on one injected graph,
//! score a fresh injection produced with a different random seed.
//! AnomalyDAE is excluded (its attribute encoder is tied to `|V|`).

use vgod_datasets::{Dataset, Scale};
use vgod_eval::{auc, auc_gap, auc_subset};

use super::injected_replica;
use crate::{detector_zoo, DetectorKind, Table};

/// Run the inductive experiment over the four injected datasets; returns
/// (AUC table, AucGap table).
pub fn run(scale: Scale, seed: u64, runs: usize) -> (Table, Table) {
    let datasets = Dataset::INJECTED;
    let mut headers = vec!["model".to_string()];
    headers.extend(datasets.iter().map(|d| d.to_string()));
    let refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut auc_table = Table::new(&refs);

    let mut gap_headers = vec!["model".to_string()];
    for ds in datasets {
        gap_headers.push(format!("{ds}:gap"));
    }
    let refs: Vec<&str> = gap_headers.iter().map(String::as_str).collect();
    let mut gap_table = Table::new(&refs);

    for kind in DetectorKind::INDUCTIVE {
        let mut auc_row = Vec::new();
        let mut gap_row = Vec::new();
        for &ds in &datasets {
            let mut a_sum = 0.0;
            let mut gap_sum = 0.0;
            for r in 0..runs {
                let run_seed = seed + r as u64;
                // Same base replica parameters; the *injection* (and the
                // topology randomness) differ between train and test via
                // the seed offset — a fresh group of datasets per Appendix B.
                let (g_train, _) = injected_replica(ds, scale, run_seed);
                let (g_test, truth) = injected_replica(ds, scale, run_seed + 10_000);
                let mut det = detector_zoo(kind, ds, scale, run_seed);
                det.fit(&g_train);
                let scores = det.score(&g_test);
                a_sum += auc(&scores.combined, &truth.outlier_mask());
                let s = auc_subset(&scores.combined, &truth.structural_mask());
                let c = auc_subset(&scores.combined, &truth.contextual_mask());
                gap_sum += auc_gap(s, c);
            }
            auc_row.push(a_sum / runs as f32);
            gap_row.push(gap_sum / runs as f32);
        }
        auc_table.metric_row(&kind.to_string(), &auc_row);
        gap_table.metric_row(&kind.to_string(), &gap_row);
        eprintln!("[inductive] finished {kind}");
    }

    println!("--- measured: inductive AUC (Table XV) ---");
    auc_table.print();
    super::print_paper_reference(
        "Table XV",
        &["model", "cora", "citeseer", "pubmed", "flickr"],
        &[
            ("Dominant", &[0.8531, 0.8755, 0.8089, 0.7545]),
            ("DONE", &[0.9110, 0.9545, 0.8362, 0.7794]),
            ("CoLA", &[0.7698, 0.8133, 0.9076, 0.6570]),
            ("CONAD", &[0.7139, 0.7074, 0.6817, 0.7536]),
            ("DegNorm", &[0.8873, 0.9350, 0.9120, 0.7642]),
            ("VGOD", &[0.9693, 0.9840, 0.9783, 0.8977]),
        ],
    );
    println!("--- measured: inductive AucGap (Table XVI, gap column) ---");
    gap_table.print();
    super::print_paper_reference(
        "Table XVI (AucGap)",
        &["model", "cora", "citeseer", "pubmed", "flickr"],
        &[
            ("Dominant", &[1.379, 1.286, 1.617, 1.961]),
            ("DONE", &[1.223, 1.116, 1.302, 1.701]),
            ("CoLA", &[1.058, 1.246, 1.102, 1.243]),
            ("CONAD", &[2.030, 2.245, 2.578, 1.968]),
            ("DegNorm", &[1.191, 1.104, 1.099, 1.759]),
            ("VGOD", &[1.020, 1.000, 1.021, 1.033]),
        ],
    );
    (auc_table, gap_table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgod_transfers_to_fresh_injections() {
        let (auc_t, _) = run(Scale::Tiny, 47, 1);
        let mean = |model: &str| -> f32 {
            ["cora", "citeseer", "pubmed", "flickr"]
                .iter()
                .map(|ds| auc_t.cell(model, ds).unwrap().parse::<f32>().unwrap())
                .sum::<f32>()
                / 4.0
        };
        let vgod = mean("VGOD");
        assert!(vgod > 0.75, "inductive VGOD mean AUC {vgod}");
        for model in ["Dominant", "DONE", "CoLA", "CONAD", "DegNorm"] {
            assert!(vgod > mean(model), "VGOD should lead {model} inductively");
        }
    }
}
