//! **Table X** and **Fig. 9** — the labeled-outlier study on the
//! Weibo-like dataset: VGOD vs the runner-up AnomalyDAE, with the dataset
//! diagnostics the paper uses to explain the win (outlier degree
//! distribution, attribute variance, homophily).

use vgod_datasets::{replica, Dataset, Scale};
use vgod_eval::auc;
use vgod_graph::{adjusted_homophily, attribute_variance, degree_stats, seeded_rng};

use crate::{detector_zoo, DetectorKind, Table};

/// Run the study; returns the Table X analogue (rows = model, columns =
/// AUC / AUC(O^str) / AUC(O^attr)).
pub fn run(scale: Scale, seed: u64) -> Table {
    let mut rng = seeded_rng(seed);
    let r = replica(Dataset::WeiboLike, scale, &mut rng);
    let truth = r.labeled_truth.expect("weibo replica carries labels");
    let g = r.graph;
    let mask = truth.outlier_mask();

    let mut table = Table::new(&["model", "AUC", "AUC(V⁻,O^str)", "AUC(V⁻,O^attr)"]);
    for kind in [DetectorKind::Vgod, DetectorKind::AnomalyDae] {
        let mut det = detector_zoo(kind, Dataset::WeiboLike, scale, seed);
        let scores = det.fit_score(&g);
        let overall = auc(&scores.combined, &mask);
        let s = auc(scores.structural_or_combined(), &mask);
        let c = auc(scores.contextual_or_combined(), &mask);
        table.metric_row(&kind.to_string(), &[overall, s, c]);
        eprintln!("[weibo_study] finished {kind}");
    }
    println!("--- measured: labeled-outlier study (Table X) ---");
    table.print();
    super::print_paper_reference(
        "Table X",
        &["model", "AUC", "AUC(V⁻,O^str)", "AUC(V⁻,O^attr)"],
        &[
            ("VGOD", &[0.977, 0.922, 0.926]),
            ("AnomalyDAE", &[0.925, 0.796, 0.925]),
        ],
    );

    // Fig. 9 diagnostics.
    let outliers = truth.structural_nodes();
    let inliers = truth.normal_nodes();
    let out_deg = degree_stats(&g, Some(&outliers));
    let in_deg = degree_stats(&g, Some(&inliers));
    let out_var = attribute_variance(&g, &outliers);
    let in_var = attribute_variance(&g, &inliers);
    let homophily = adjusted_homophily(&g);
    println!("--- measured: dataset diagnostics (Fig. 9 / §VI-E4) ---");
    let mut diag = Table::new(&["statistic", "measured", "paper"]);
    diag.row(vec![
        "outlier degree mean".into(),
        format!("{:.2}", out_deg.mean),
        "≈ inlier mean (Fig. 9b)".into(),
    ]);
    diag.row(vec![
        "inlier degree mean".into(),
        format!("{:.2}", in_deg.mean),
        "—".into(),
    ]);
    diag.row(vec![
        "outlier attr variance".into(),
        format!("{out_var:.1}"),
        "425.0".into(),
    ]);
    diag.row(vec![
        "inlier attr variance".into(),
        format!("{in_var:.2}"),
        "11.95".into(),
    ]);
    diag.row(vec![
        "adjusted homophily".into(),
        format!("{homophily:.2}"),
        "0.75".into(),
    ]);
    diag.print();
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgod_wins_via_structural_detection() {
        let t = run(Scale::Tiny, 29);
        let vgod: f32 = t.cell("VGOD", "AUC").unwrap().parse().unwrap();
        let dae: f32 = t.cell("AnomalyDAE", "AUC").unwrap().parse().unwrap();
        assert!(vgod > 0.8, "VGOD AUC on weibo-like = {vgod}");
        // At tiny scale both models can saturate; allow a hairline tie on
        // the combined AUC — the structural-channel gap below is the
        // discriminating claim.
        assert!(
            vgod > dae - 0.01,
            "VGOD ({vgod}) should match/beat AnomalyDAE ({dae})"
        );
        // The paper's explanation: VGOD's edge comes from the structural
        // (neighbour variance) channel.
        let vgod_str: f32 = t.cell("VGOD", "AUC(V⁻,O^str)").unwrap().parse().unwrap();
        let dae_str: f32 = t
            .cell("AnomalyDAE", "AUC(V⁻,O^str)")
            .unwrap()
            .parse()
            .unwrap();
        assert!(
            vgod_str > dae_str,
            "VGOD str {vgod_str} vs AnomalyDAE str {dae_str}"
        );
    }
}
