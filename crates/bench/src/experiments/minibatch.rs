//! Mini-batch training ablation (engineering extension of §V-D): AUC and
//! wall-clock of neighbour-sampled mini-batch VBM training vs full-batch,
//! at several batch sizes.

use vgod::{MiniBatchConfig, Vbm};
use vgod_datasets::{Dataset, Scale};
use vgod_eval::{auc, time_it, OutlierDetector};

use super::varied_q::{injected_groups, vbm_for};
use crate::Table;

/// Batch sizes compared against full-batch training.
pub const BATCH_SIZES: [usize; 3] = [512, 128, 32];

/// Neighbour fan-out cap.
pub const NEIGHBOR_CAP: usize = 10;

/// Run the ablation on one dataset; rows = trainer, columns = AUC and fit
/// seconds.
pub fn run_dataset(ds: Dataset, scale: Scale, seed: u64) -> Table {
    let (g, truth, _) = injected_groups(ds, scale, seed);
    let mask = truth.outlier_mask();
    let mut table = Table::new(&["trainer", "auc", "fit_seconds"]);

    let (full_auc, full_time) = {
        let mut vbm = vbm_for(ds, scale, seed);
        let (_, t) = time_it(|| OutlierDetector::fit(&mut vbm, &g));
        (auc(&vbm.scores(&g), &mask), t)
    };
    table.metric_row("VBM full-batch", &[full_auc, full_time.as_secs_f32()]);

    for batch_size in BATCH_SIZES {
        let mut vbm: Vbm = vbm_for(ds, scale, seed);
        let (_, t) = time_it(|| {
            vbm.fit_minibatch(
                &g,
                &MiniBatchConfig {
                    batch_size,
                    neighbor_cap: NEIGHBOR_CAP,
                },
            )
        });
        let a = auc(&vbm.scores(&g), &mask);
        table.metric_row(&format!("VBM batch={batch_size}"), &[a, t.as_secs_f32()]);
    }

    // ARM side (shaDow-style sampled subgraphs), evaluated on what ARM
    // actually detects: a contextual-only injection of the same replica.
    let (g_ctx, truth_ctx) = {
        let mut rng = vgod_graph::seeded_rng(seed);
        let mut r = vgod_datasets::replica(ds, scale, &mut rng);
        let (_, cp) = vgod_datasets::injection_params(ds, scale);
        let mut truth = vgod_inject::GroundTruth::new(r.graph.num_nodes());
        vgod_inject::inject_contextual(&mut r.graph, &mut truth, &cp, &mut rng);
        (r.graph, truth)
    };
    let ctx_mask = truth_ctx.outlier_mask();
    let arm_cfg = crate::vgod_config_for(ds, scale, seed).arm;
    let (full_auc, full_time) = {
        let mut arm = vgod::Arm::new(arm_cfg.clone());
        let (_, t) = time_it(|| OutlierDetector::fit(&mut arm, &g_ctx));
        (auc(&arm.scores(&g_ctx), &ctx_mask), t)
    };
    table.metric_row("ARM full-batch", &[full_auc, full_time.as_secs_f32()]);
    for batch_size in BATCH_SIZES {
        // One mini-batch epoch takes ⌈n / batch⌉ optimizer steps where a
        // full-batch epoch takes one; equalise the total step count, or the
        // extra steps over-train the reconstruction (the same overfitting
        // the Fig. 8 / §VI-B2 epoch budgets guard against).
        let steps_per_epoch = g_ctx.num_nodes().div_ceil(batch_size);
        let mut cfg = arm_cfg.clone();
        cfg.epochs = (arm_cfg.epochs / steps_per_epoch).max(1);
        let mut arm = vgod::Arm::new(cfg);
        let (_, t) = time_it(|| {
            arm.fit_minibatch(
                &g_ctx,
                &MiniBatchConfig {
                    batch_size,
                    neighbor_cap: NEIGHBOR_CAP,
                },
            )
        });
        let a = auc(&arm.scores(&g_ctx), &ctx_mask);
        table.metric_row(&format!("ARM batch={batch_size}"), &[a, t.as_secs_f32()]);
    }
    println!("--- measured: mini-batch ablation on {ds} ---");
    table.print();
    println!(
        "note: mini-batch rows use a step-equalised epoch budget (one mini-batch epoch takes \
         n/batch optimizer steps); with it, both models match full-batch quality."
    );
    table
}

/// Run on PubMed-like (the largest replica, where batching matters most).
pub fn run(scale: Scale, seed: u64) -> Table {
    let t = run_dataset(Dataset::PubmedLike, scale, seed);
    println!(
        "expected shape: mini-batch AUC within a few points of full-batch at every batch size \
         (the contrastive variance objective is robust to neighbour sampling)."
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minibatch_tracks_full_batch() {
        let t = run_dataset(Dataset::CoraLike, Scale::Tiny, 17);
        let full: f32 = t.cell("VBM full-batch", "auc").unwrap().parse().unwrap();
        let b32: f32 = t.cell("VBM batch=32", "auc").unwrap().parse().unwrap();
        assert!(full > 0.8, "full-batch AUC {full}");
        assert!(
            (full - b32).abs() < 0.12,
            "batch=32 ({b32}) should track full ({full})"
        );
    }
}
