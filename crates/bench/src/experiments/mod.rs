//! One module per paper table/figure. Every `run` function takes the
//! replica scale and a base seed, prints its tables, and returns the main
//! one so bench targets and tests can inspect cells.

pub mod efficiency;
pub mod fig2;
pub mod fig3;
pub mod gnn_ablation;
pub mod inductive;
pub mod metrics_extra;
pub mod minibatch;
pub mod new_injection;
pub mod score_combination;
pub mod self_loop;
pub mod sensitivity;
pub mod theorem1;
pub mod unod;
pub mod varied_q;
pub mod vbm_epochs;
pub mod weibo_study;

use vgod_datasets::{injection_params, replica, Dataset, Scale};
use vgod_eval::Scores;
use vgod_graph::{seeded_rng, AttributedGraph};
use vgod_inject::{inject_standard, GroundTruth};

/// Build a replica of `ds` and apply the standard injection protocol
/// (§VI-B1). For Weibo the organic labels are returned instead.
pub(crate) fn injected_replica(
    ds: Dataset,
    scale: Scale,
    seed: u64,
) -> (AttributedGraph, GroundTruth) {
    let mut rng = seeded_rng(seed);
    let mut r = replica(ds, scale, &mut rng);
    if let Some(truth) = r.labeled_truth {
        return (r.graph, truth);
    }
    let (sp, cp) = injection_params(ds, scale);
    let truth = inject_standard(&mut r.graph, &sp, &cp, &mut rng);
    (r.graph, truth)
}

/// The paper's rule for models with several output scores (§VI-C2): "we
/// adopt the score with the highest AUC as its structural score". Returns
/// the score vector whose AUC against `mask` is highest.
pub(crate) fn best_scores_vector(scores: &Scores, mask: &[bool]) -> Vec<f32> {
    let mut best = (&scores.combined, vgod_eval::auc(&scores.combined, mask));
    for candidate in [scores.structural.as_ref(), scores.contextual.as_ref()]
        .into_iter()
        .flatten()
    {
        let a = vgod_eval::auc(candidate, mask);
        if a > best.1 {
            best = (candidate, a);
        }
    }
    best.0.clone()
}

/// Mean of `runs` evaluations of `f(run_index)`.
pub(crate) fn mean_over_runs(runs: usize, mut f: impl FnMut(usize) -> f32) -> f32 {
    (0..runs).map(&mut f).sum::<f32>() / runs as f32
}

/// Print a static table of the paper's reported numbers for side-by-side
/// comparison.
pub(crate) fn print_paper_reference(title: &str, headers: &[&str], rows: &[(&str, &[f32])]) {
    println!("--- paper-reported reference: {title} ---");
    let mut t = crate::Table::new(headers);
    for (label, values) in rows {
        t.metric_row(label, values);
    }
    t.print();
}
