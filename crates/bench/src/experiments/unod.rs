//! **Table IV** (AUC) and **Table III** (AucGap / per-type AUC) — the main
//! UNOD experiment: all seven detectors on all five datasets under the
//! standard injection protocol.

use vgod_datasets::{Dataset, Scale};
use vgod_eval::{auc, auc_gap, auc_subset};

use super::injected_replica;
use crate::{detector_zoo, DetectorKind, Table};

/// Run the UNOD experiment. Prints the AUC table (Table IV) and the
/// balance table (Table III); returns the AUC table.
pub fn run(scale: Scale, seed: u64, runs: usize) -> (Table, Table) {
    let mut auc_headers = vec!["model".to_string()];
    auc_headers.extend(Dataset::ALL.iter().map(|d| d.to_string()));
    let refs: Vec<&str> = auc_headers.iter().map(String::as_str).collect();
    let mut auc_table = Table::new(&refs);

    let mut gap_headers = vec!["model".to_string()];
    for ds in Dataset::INJECTED {
        gap_headers.push(format!("{ds}:gap"));
        gap_headers.push(format!("{ds}:str"));
        gap_headers.push(format!("{ds}:ctx"));
    }
    let refs: Vec<&str> = gap_headers.iter().map(String::as_str).collect();
    let mut gap_table = Table::new(&refs);

    for kind in DetectorKind::ALL {
        let mut auc_row = Vec::new();
        let mut gap_row = Vec::new();
        for ds in Dataset::ALL {
            let mut a_sum = 0.0f32;
            let mut s_sum = 0.0f32;
            let mut c_sum = 0.0f32;
            for r in 0..runs {
                let run_seed = seed + r as u64;
                let (g, truth) = injected_replica(ds, scale, run_seed);
                let mut det = detector_zoo(kind, ds, scale, run_seed);
                let scores = det.fit_score(&g);
                a_sum += auc(&scores.combined, &truth.outlier_mask());
                if ds != Dataset::WeiboLike {
                    s_sum += auc_subset(&scores.combined, &truth.structural_mask());
                    c_sum += auc_subset(&scores.combined, &truth.contextual_mask());
                }
            }
            auc_row.push(a_sum / runs as f32);
            if ds != Dataset::WeiboLike {
                let s = s_sum / runs as f32;
                let c = c_sum / runs as f32;
                gap_row.push(auc_gap(s, c));
                gap_row.push(s);
                gap_row.push(c);
            }
        }
        auc_table.metric_row(&kind.to_string(), &auc_row);
        gap_table.metric_row(&kind.to_string(), &gap_row);
        // Progress feedback: these cells are the most expensive in the
        // whole harness.
        eprintln!("[unod] finished {kind}");
    }

    println!("--- measured: AUC (Table IV) ---");
    auc_table.print();
    super::print_paper_reference(
        "Table IV (AUC)",
        &["model", "cora", "citeseer", "pubmed", "flickr", "weibo"],
        &PAPER_TABLE4,
    );
    println!("--- measured: AucGap / per-type AUC (Table III) ---");
    gap_table.print();
    super::print_paper_reference(
        "Table III (AucGap per dataset)",
        &["model", "cora", "citeseer", "pubmed", "flickr"],
        &PAPER_TABLE3_GAP,
    );
    (auc_table, gap_table)
}

/// Table IV as reported by the paper.
pub const PAPER_TABLE4: [(&str, &[f32]); 7] = [
    ("Dominant", &[0.8134, 0.8250, 0.7999, 0.7440, 0.925]),
    ("AnomalyDAE", &[0.8433, 0.8441, 0.8898, 0.7524, 0.928]),
    ("DONE", &[0.8498, 0.8800, 0.7664, 0.7482, 0.887]),
    ("CoLA", &[0.8790, 0.8861, 0.9214, 0.7530, 0.748]),
    ("CONAD", &[0.7456, 0.7078, 0.6930, 0.7395, 0.927]),
    ("DegNorm", &[0.8928, 0.9385, 0.9074, 0.7515, 0.893]),
    ("VGOD", &[0.9503, 0.9845, 0.9813, 0.8773, 0.9765]),
];

/// Table III AucGap column as reported by the paper.
pub const PAPER_TABLE3_GAP: [(&str, &[f32]); 7] = [
    ("Dominant", &[1.312, 1.165, 1.652, 2.029]),
    ("AnomalyDAE", &[1.161, 1.070, 1.118, 1.860]),
    ("DONE", &[1.217, 1.016, 1.217, 1.557]),
    ("CoLA", &[1.127, 1.188, 1.054, 1.395]),
    ("CONAD", &[1.877, 2.236, 2.417, 2.066]),
    ("DegNorm", &[1.132, 1.116, 1.093, 1.822]),
    ("VGOD", &[1.072, 1.026, 1.021, 1.066]),
];

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline claim at tiny scale: VGOD beats every baseline on the
    /// combined AUC averaged over the injected datasets, and is the most
    /// balanced. One seed keeps this test affordable; the bench target
    /// covers bigger scales.
    #[test]
    fn vgod_wins_overall_at_tiny_scale() {
        let (auc_t, gap_t) = run(Scale::Tiny, 77, 1);
        let mean_of = |t: &Table, model: &str, cols: &[&str]| -> f32 {
            cols.iter()
                .map(|c| t.cell(model, c).unwrap().parse::<f32>().unwrap())
                .sum::<f32>()
                / cols.len() as f32
        };
        let datasets = ["cora", "citeseer", "pubmed", "flickr", "weibo"];
        let vgod = mean_of(&auc_t, "VGOD", &datasets);
        for model in ["Dominant", "AnomalyDAE", "DONE", "CoLA", "CONAD", "DegNorm"] {
            let other = mean_of(&auc_t, model, &datasets);
            assert!(
                vgod > other,
                "VGOD mean AUC {vgod} should beat {model}'s {other}"
            );
        }
        let gap_cols = ["cora:gap", "citeseer:gap", "pubmed:gap", "flickr:gap"];
        let vgod_gap = mean_of(&gap_t, "VGOD", &gap_cols);
        assert!(vgod_gap < 1.5, "VGOD mean AucGap {vgod_gap}");
    }
}
