//! **Fig. 7** (training time per epoch) and **Table VII** (inference time)
//! — wall-clock efficiency of every model under the UNOD setting.
//!
//! Absolute numbers depend on the machine and the replica scale; the shape
//! to look for is the paper's: VGOD's O(|E| + |V|) inference is among the
//! fastest and CoLA's multi-round sampling inference is orders of magnitude
//! slower than everything else.

use vgod_datasets::{Dataset, Scale};
use vgod_eval::time_it;

use super::injected_replica;
use crate::{deep_config_for, detector_zoo, DetectorKind, Table};

/// Run the timing experiment; returns (train s/epoch table, inference table).
pub fn run(scale: Scale, seed: u64) -> (Table, Table) {
    let datasets = Dataset::INJECTED;
    let mut headers = vec!["model".to_string()];
    headers.extend(datasets.iter().map(|d| d.to_string()));
    let refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut train_table = Table::new(&refs);
    let mut infer_table = Table::new(&refs);

    for kind in DetectorKind::ALL {
        let mut train_row = Vec::new();
        let mut infer_row = Vec::new();
        for &ds in &datasets {
            let (g, _) = injected_replica(ds, scale, seed);
            let mut det = detector_zoo(kind, ds, scale, seed);
            let (_, fit_time) = time_it(|| det.fit(&g));
            let epochs = match kind {
                // VGOD trains VBM + ARM with separate budgets; normalise by
                // the ARM budget (the dominant cost), matching the paper's
                // per-epoch accounting.
                DetectorKind::Vgod => crate::vgod_config_for(ds, scale, seed).arm.epochs,
                DetectorKind::DegNorm => 1,
                _ => deep_config_for(scale, seed).epochs,
            };
            let (_, score_time) = time_it(|| det.score(&g));
            train_row.push(fit_time.as_secs_f32() / epochs as f32);
            infer_row.push(score_time.as_secs_f32());
        }
        train_table.metric_row(&kind.to_string(), &train_row);
        infer_table.metric_row(&kind.to_string(), &infer_row);
        eprintln!("[efficiency] finished {kind}");
    }

    println!("--- measured: training time per epoch, seconds (Fig. 7) ---");
    train_table.print();
    println!("--- measured: inference time, seconds (Table VII) ---");
    infer_table.print();
    super::print_paper_reference(
        "Table VII (inference seconds, authors' machine)",
        &["model", "cora", "citeseer", "pubmed", "flickr"],
        &[
            ("Dominant", &[0.102, 0.235, 3.021, 4.183]),
            ("AnomalyDAE", &[0.147, 0.303, 4.390, 2.493]),
            ("DONE", &[0.604, 0.865, 12.147, 5.256]),
            ("CoLA", &[413.0, 752.0, 3266.0, 910.0]),
            ("CONAD", &[0.093, 0.201, 2.823, 1.379]),
            ("VGOD", &[0.088, 0.145, 0.874, 3.899]),
        ],
    );
    (train_table, infer_table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cola_inference_dominates_and_all_times_positive() {
        let (_, infer) = run(Scale::Tiny, 3);
        // Individual Tiny-scale cells are sub-millisecond and easily flipped
        // by scheduler noise; sum across datasets for a stable comparison.
        let total = |model: &str| -> f32 {
            ["cora", "citeseer", "pubmed", "flickr"]
                .iter()
                .map(|ds| infer.cell(model, ds).unwrap().parse::<f32>().unwrap())
                .sum()
        };
        let (cola, vgod) = (total("CoLA"), total("VGOD"));
        assert!(
            cola > vgod,
            "CoLA total inference ({cola}s) should be slower than VGOD ({vgod}s)"
        );
        assert!(vgod >= 0.0);
    }
}
