//! Extended-metric report (engineering extension): the BOND benchmark —
//! the paper's unified-evaluation reference \[9\] — reports average precision
//! alongside AUC. This experiment re-runs the UNOD setting and reports AUC,
//! average precision and precision@|outliers| for every detector on one
//! dataset.

use vgod_baselines::{Guide, Radar};
use vgod_datasets::{Dataset, Scale};
use vgod_eval::{auc, average_precision, precision_at_k, OutlierDetector};

use super::injected_replica;
use crate::{deep_config_for, detector_zoo, DetectorKind, Table};

/// Run the extended-metric report on one dataset. Besides the paper's
/// seven detectors, this table adds the two related-work families the
/// paper discusses but does not benchmark: Radar (non-deep residual
/// analysis) and GUIDE (higher-order structure reconstruction).
pub fn run_dataset(ds: Dataset, scale: Scale, seed: u64) -> Table {
    let (g, truth) = injected_replica(ds, scale, seed);
    let mask = truth.outlier_mask();
    let n_out = mask.iter().filter(|&&o| o).count();

    let mut table = Table::new(&["model", "auc", "avg_precision", "precision_at_k"]);
    let mut add_row = |name: &str, scores: &[f32]| {
        table.metric_row(
            name,
            &[
                auc(scores, &mask),
                average_precision(scores, &mask),
                precision_at_k(scores, &mask, n_out),
            ],
        );
        eprintln!("[metrics_extra] finished {name}");
    };
    for kind in DetectorKind::ALL {
        let mut det = detector_zoo(kind, ds, scale, seed);
        let scores = det.fit_score(&g);
        add_row(&kind.to_string(), &scores.combined);
    }
    let deep = deep_config_for(scale, seed);
    let mut radar = Radar::new(vgod_baselines::DeepConfig {
        epochs: 150,
        lr: 0.05,
        ..deep.clone()
    });
    add_row("Radar", &radar.fit_score(&g).combined);
    let mut guide = Guide::new(deep);
    add_row("GUIDE", &guide.fit_score(&g).combined);

    println!("--- measured: extended metrics on {ds} (k = {n_out}) ---");
    table.print();
    table
}

/// Run on Cora-like.
pub fn run(scale: Scale, seed: u64) -> Table {
    run_dataset(Dataset::CoraLike, scale, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgod_leads_on_average_precision_too() {
        let t = run_dataset(Dataset::CoraLike, Scale::Tiny, 67);
        let vgod_ap: f32 = t.cell("VGOD", "avg_precision").unwrap().parse().unwrap();
        assert!(
            vgod_ap > 0.3,
            "VGOD AP {vgod_ap} (AP is much stricter than AUC)"
        );
        for model in ["Dominant", "CONAD"] {
            let other: f32 = t.cell(model, "avg_precision").unwrap().parse().unwrap();
            assert!(
                vgod_ap > other,
                "VGOD AP {vgod_ap} should beat {model}'s {other}"
            );
        }
        // AUC and AP rank consistently at the top.
        let vgod_auc: f32 = t.cell("VGOD", "auc").unwrap().parse().unwrap();
        assert!(vgod_auc > 0.8);
    }
}
