//! **Fig. 2** — the data-leakage demonstration: after standard injection,
//! plain node degree detects structural outliers and plain attribute
//! L2-norm detects contextual outliers at near-perfect AUC, while a random
//! detector sits at 0.5.

use vgod_baselines::{Deg, L2Norm, RandomDetector};
use vgod_datasets::{Dataset, Scale};
use vgod_eval::{auc, OutlierDetector};

use super::{injected_replica, mean_over_runs};
use crate::Table;

/// Run the leakage demo and print/return the table (rows = probe, columns
/// = datasets).
pub fn run(scale: Scale, seed: u64, runs: usize) -> Table {
    let datasets = Dataset::INJECTED;
    let mut headers = vec!["probe"];
    let names: Vec<String> = datasets.iter().map(|d| d.to_string()).collect();
    headers.extend(names.iter().map(String::as_str));
    let mut table = Table::new(&headers);

    let mut deg_row = Vec::new();
    let mut norm_row = Vec::new();
    let mut rand_row = Vec::new();
    for &ds in &datasets {
        let deg = mean_over_runs(runs, |r| {
            let (g, truth) = injected_replica(ds, scale, seed + r as u64);
            auc(&Deg.score(&g).combined, &truth.structural_mask())
        });
        let norm = mean_over_runs(runs, |r| {
            let (g, truth) = injected_replica(ds, scale, seed + r as u64);
            auc(&L2Norm.score(&g).combined, &truth.contextual_mask())
        });
        let random = mean_over_runs(runs, |r| {
            let (g, truth) = injected_replica(ds, scale, seed + r as u64);
            auc(
                &RandomDetector::new(seed + r as u64).score(&g).combined,
                &truth.outlier_mask(),
            )
        });
        deg_row.push(deg);
        norm_row.push(norm);
        rand_row.push(random);
    }
    table.metric_row("degree → structural", &deg_row);
    table.metric_row("L2-norm → contextual", &norm_row);
    table.metric_row("random → all", &rand_row);
    table.print();
    super::print_paper_reference(
        "Fig. 2 (approximate bar heights)",
        &["probe", "cora", "citeseer", "pubmed", "flickr"],
        &[
            ("degree → structural", &[0.98, 0.99, 0.95, 0.60]),
            ("L2-norm → contextual", &[0.98, 0.98, 0.98, 0.98]),
            ("random → all", &[0.50, 0.50, 0.50, 0.50]),
        ],
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leakage_probes_beat_random() {
        let t = run(Scale::Tiny, 13, 1);
        for ds in ["cora", "citeseer", "pubmed"] {
            let deg: f32 = t.cell("degree → structural", ds).unwrap().parse().unwrap();
            assert!(deg > 0.85, "{ds}: degree probe {deg}");
            let norm: f32 = t.cell("L2-norm → contextual", ds).unwrap().parse().unwrap();
            assert!(norm > 0.7, "{ds}: norm probe {norm}");
            let rand: f32 = t.cell("random → all", ds).unwrap().parse().unwrap();
            assert!((0.3..0.7).contains(&rand), "{ds}: random {rand}");
        }
    }
}
