//! Hyperparameter-sensitivity ablation (engineering extension, called out
//! in DESIGN.md §4): how VBM's detection quality responds to the embedding
//! dimension and the learning rate, and how VGOD responds to the ARM epoch
//! budget. The paper fixes `d_h = 128`, `lr = 0.005`, `Epoch_ARM = 100`
//! (§VI-B2) without reporting a sweep; this experiment backs those choices.

use vgod::{Vbm, VbmConfig};
use vgod_datasets::{Dataset, Scale};
use vgod_eval::{auc, OutlierDetector};

use super::injected_replica;
use crate::Table;

/// Embedding dimensions swept.
pub const HIDDEN_DIMS: [usize; 4] = [8, 32, 64, 128];

/// Learning rates swept.
pub const LEARNING_RATES: [f32; 3] = [0.001, 0.005, 0.05];

/// Run the sweep on one dataset; rows = learning rate, columns = hidden
/// dim; cells = VBM AUC on the standard injection's structural outliers.
pub fn run_dataset(ds: Dataset, scale: Scale, seed: u64) -> Table {
    let mut headers = vec!["lr \\ d_h".to_string()];
    headers.extend(HIDDEN_DIMS.iter().map(|d| d.to_string()));
    let refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&refs);

    let (g, truth) = injected_replica(ds, scale, seed);
    let mask = truth.structural_mask();
    for lr in LEARNING_RATES {
        let row: Vec<f32> = HIDDEN_DIMS
            .iter()
            .map(|&hidden_dim| {
                let mut vbm = Vbm::new(VbmConfig {
                    hidden_dim,
                    epochs: 10,
                    lr,
                    self_loops: false,
                    seed,
                });
                OutlierDetector::fit(&mut vbm, &g);
                auc(&vbm.scores(&g), &mask)
            })
            .collect();
        table.metric_row(&format!("{lr}"), &row);
    }
    println!("--- measured: VBM sensitivity on {ds} (AUC on structural outliers) ---");
    table.print();
    table
}

/// Run on Cora-like (the sweep is qualitative; one dataset suffices).
pub fn run(scale: Scale, seed: u64) -> Table {
    let t = run_dataset(Dataset::CoraLike, scale, seed);
    println!(
        "expected shape: flat in d_h beyond ~32 (the variance signal is low-rank), tolerant of \
         lr within an order of magnitude — supporting the paper's fixed d_h = 128, lr = 0.005."
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_is_insensitive_to_hidden_dim_beyond_small() {
        let t = run_dataset(Dataset::CoraLike, Scale::Tiny, 19);
        // At the paper's lr, going from 32 to 128 dims barely matters.
        let a32: f32 = t.cell("0.005", "32").unwrap().parse().unwrap();
        let a128: f32 = t.cell("0.005", "128").unwrap().parse().unwrap();
        assert!(a32 > 0.75, "d_h=32 AUC {a32}");
        assert!((a32 - a128).abs() < 0.12, "32 vs 128 dims: {a32} vs {a128}");
    }
}
