//! Criterion microbenchmarks for the hot kernels behind the experiments:
//! dense GEMM, sparse message passing, neighbour variance, negative-edge
//! sampling and AUC computation — plus a scalar-vs-dispatched SIMD A/B
//! sweep written to `BENCH_simd.json` at the repository root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::cell::Cell;
use std::io::Write as _;
use std::rc::Rc;

use vgod_autograd::Tape;
use vgod_gnn::{neighbor_variance_matrix, neighbor_variance_scores};
use vgod_graph::{community_graph, seeded_rng, CommunityGraphConfig};
use vgod_tensor::{simd, threading, AdamStep, Matrix};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[64usize, 256] {
        let a = Matrix::from_fn(n, n, |r, cc| ((r * 31 + cc * 17) % 13) as f32 - 6.0);
        let b = Matrix::from_fn(n, n, |r, cc| ((r * 7 + cc * 3) % 11) as f32 - 5.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let mut rng = seeded_rng(0);
    let g = community_graph(
        &CommunityGraphConfig::homogeneous(2000, 5, 8.0, 0.9),
        &mut rng,
    );
    let adj = g.mean_adjacency(false);
    let h = Matrix::from_fn(2000, 64, |r, cc| ((r + cc) % 7) as f32 * 0.3 - 1.0);
    c.bench_function("spmm_2000x64", |b| {
        b.iter(|| std::hint::black_box(adj.spmm(&h)));
    });
}

fn bench_neighbor_variance(c: &mut Criterion) {
    let mut rng = seeded_rng(1);
    let g = community_graph(
        &CommunityGraphConfig::homogeneous(2000, 5, 8.0, 0.9),
        &mut rng,
    );
    let adj = g.mean_adjacency(true);
    let h = Matrix::from_fn(2000, 64, |r, cc| ((r * 3 + cc) % 9) as f32 * 0.2 - 0.8);
    c.bench_function("neighbor_variance_matrix_2000x64", |b| {
        b.iter(|| std::hint::black_box(neighbor_variance_matrix(&h, &adj)));
    });
    let adj_rc = Rc::new(adj);
    c.bench_function("neighbor_variance_backward_2000x64", |b| {
        b.iter(|| {
            let tape = Tape::new();
            let hv = tape.constant(h.clone());
            let loss = neighbor_variance_scores(&hv, &adj_rc).mean_all();
            loss.backward();
        });
    });
}

fn bench_negative_sampling(c: &mut Criterion) {
    let mut rng = seeded_rng(2);
    let g = community_graph(
        &CommunityGraphConfig::homogeneous(2000, 5, 8.0, 0.9),
        &mut rng,
    );
    c.bench_function("negative_edges_2000", |b| {
        let mut rng = seeded_rng(3);
        b.iter(|| std::hint::black_box(g.negative_edges(&mut rng)));
    });
}

fn bench_auc(c: &mut Criterion) {
    let mut rng = seeded_rng(4);
    let scores: Vec<f32> = (0..20_000)
        .map(|_| rand::Rng::gen_range(&mut rng, 0.0..1.0))
        .collect();
    let labels: Vec<bool> = (0..20_000).map(|i| i % 17 == 0).collect();
    c.bench_function("auc_20000", |b| {
        b.iter(|| std::hint::black_box(vgod_eval::auc(&scores, &labels)));
    });
}

fn bench_gat_layer(c: &mut Criterion) {
    use vgod_autograd::ParamStore;
    use vgod_gnn::{GatLayer, GraphContext};
    let mut rng = seeded_rng(5);
    let g = {
        let mut g = community_graph(
            &CommunityGraphConfig::homogeneous(2000, 5, 8.0, 0.9),
            &mut rng,
        );
        g.set_attrs(Matrix::from_fn(2000, 64, |r, cc| {
            ((r + cc * 3) % 9) as f32 * 0.2 - 0.8
        }));
        g
    };
    let ctx = GraphContext::from_graph(&g);
    let mut store = ParamStore::new();
    let layer = GatLayer::new(&mut store, 64, 64, &mut rng);
    c.bench_function("gat_forward_2000x64", |b| {
        b.iter(|| {
            let tape = Tape::new();
            let x = tape.constant(g.attrs().clone());
            std::hint::black_box(layer.forward(&tape, &store, &x, &ctx).value())
        });
    });
    c.bench_function("gat_forward_backward_2000x64", |b| {
        b.iter(|| {
            let mut s = store.clone();
            let tape = Tape::new();
            let x = tape.constant(g.attrs().clone());
            let loss = layer.forward(&tape, &s, &x, &ctx).square().mean_all();
            loss.backward_into(&mut s);
        });
    });
}

fn bench_adam_step(c: &mut Criterion) {
    use vgod_autograd::ParamStore;
    use vgod_nn::{Adam, Optimizer};
    let mut store = ParamStore::new();
    for _ in 0..4 {
        store.insert(Matrix::from_fn(256, 256, |r, cc| {
            ((r * cc) % 7) as f32 * 0.1
        }));
    }
    // Seed gradients once; step() zeroes them, so re-seed per iteration.
    c.bench_function("adam_step_4x256x256", |b| {
        let mut opt = Adam::new(1e-3);
        b.iter(|| {
            for (_, p) in store.iter_mut() {
                p.grad.map_inplace(|_| 0.01);
            }
            opt.step(&mut store);
        });
    });
}

fn bench_vbm_epoch(c: &mut Criterion) {
    use vgod::{Vbm, VbmConfig};
    use vgod_eval::OutlierDetector;
    let mut rng = seeded_rng(6);
    let mut g = community_graph(
        &CommunityGraphConfig::homogeneous(2000, 5, 8.0, 0.9),
        &mut rng,
    );
    g.set_attrs(Matrix::from_fn(2000, 64, |r, cc| {
        ((r * 5 + cc) % 11) as f32 * 0.15 - 0.7
    }));
    c.bench_function("vbm_train_one_epoch_2000x64", |b| {
        b.iter(|| {
            let mut vbm = Vbm::new(VbmConfig {
                hidden_dim: 64,
                epochs: 1,
                lr: 0.005,
                self_loops: true,
                seed: 0,
            });
            OutlierDetector::fit(&mut vbm, &g);
        });
    });
}

struct SimdResult {
    name: &'static str,
    scalar_ns: f64,
    simd_ns: f64,
}

/// Time `routine` with the scalar kernels forced and again dispatched.
/// Both legs run single-threaded so the pool cannot blur the ISA delta.
fn simd_ab<O>(c: &mut Criterion, name: &'static str, mut routine: impl FnMut() -> O) -> SimdResult {
    let median = Cell::new(0.0f64);
    simd::force_scalar(true);
    c.bench_function(&format!("{name}/scalar"), |b| {
        b.iter(&mut routine);
        median.set(b.median_ns());
    });
    let scalar_ns = median.get();
    simd::force_scalar(false);
    c.bench_function(&format!("{name}/simd"), |b| {
        b.iter(&mut routine);
        median.set(b.median_ns());
    });
    SimdResult {
        name,
        scalar_ns,
        simd_ns: median.get(),
    }
}

/// Scalar-vs-dispatched A/B over every dispatched kernel family, at the
/// same paper scale as `kernels.rs` (n = 10k, d = 64).
fn bench_simd_ab(c: &mut Criterion) {
    const N: usize = 10_000;
    const D: usize = 64;
    let mut rng = seeded_rng(0);
    let g = community_graph(
        &CommunityGraphConfig::homogeneous(N, 10, 8.0, 0.9),
        &mut rng,
    );
    let adj = g.mean_adjacency(true);
    let h = Matrix::from_fn(N, D, |r, cc| ((r * 5 + cc * 3) % 13) as f32 * 0.15 - 0.9);
    let w = Matrix::from_fn(D, D, |r, cc| ((r * 7 + cc) % 11) as f32 * 0.1 - 0.5);
    let h2 = Matrix::from_fn(N, D, |r, cc| ((r + cc * 7) % 9) as f32 * 0.2 - 0.8);

    threading::force_sequential(true);
    let mut results = Vec::new();
    results.push(simd_ab(c, "matmul_10000x64x64", || {
        std::hint::black_box(h.matmul(&w))
    }));
    results.push(simd_ab(c, "matmul_tn_10000x64", || {
        std::hint::black_box(h.matmul_tn(&h2))
    }));
    results.push(simd_ab(c, "matmul_nt_10000x64", || {
        std::hint::black_box(h.matmul_nt(&h2))
    }));
    results.push(simd_ab(c, "spmm_10000x64", || {
        std::hint::black_box(adj.spmm(&h))
    }));
    results.push(simd_ab(c, "spmm_t_10000x64", || {
        std::hint::black_box(adj.spmm_t(&h))
    }));
    results.push(simd_ab(c, "hadamard_10000x64", || {
        std::hint::black_box(h.mul(&h2))
    }));
    results.push(simd_ab(c, "axpy_10000x64", || {
        let mut out = h.clone();
        out.add_scaled(0.3, &h2);
        std::hint::black_box(out)
    }));
    results.push(simd_ab(c, "row_sums_10000x64", || {
        std::hint::black_box(h.row_sums())
    }));
    results.push(simd_ab(c, "frobenius_10000x64", || {
        std::hint::black_box(h.frobenius_norm())
    }));
    let step = AdamStep {
        lr: 0.01,
        beta1: 0.9,
        beta2: 0.999,
        eps: 1e-8,
        bias1: 0.1,
        bias2: 0.001,
    };
    // The fused-Adam baseline is the pre-dispatch optimizer body: the
    // per-element `zip_apply3` closure with its three divisions, exactly as
    // `Adam::step` ran before the kernel layer. The dispatched leg is the
    // fused kernel. Buffers are hoisted out of the routines so the A/B times
    // the pass, not a clone and two zero-fills; state evolving across
    // iterations is fine — the update keeps every buffer finite.
    let median = Cell::new(0.0f64);
    simd::force_scalar(true);
    let mut value = h.clone();
    let mut m = Matrix::zeros(N, D);
    let mut v = Matrix::zeros(N, D);
    c.bench_function("fused_adam_pass_10000x64/scalar", |b| {
        b.iter(|| {
            value.zip_apply3(&mut m, &mut v, &h2, |pv, mv, vv, gv| {
                *mv = step.beta1 * *mv + (1.0 - step.beta1) * gv;
                *vv = step.beta2 * *vv + (1.0 - step.beta2) * gv * gv;
                let m_hat = *mv / step.bias1;
                let v_hat = *vv / step.bias2;
                *pv -= step.lr * m_hat / (v_hat.sqrt() + step.eps);
            });
            std::hint::black_box(value.as_slice()[0])
        });
        median.set(b.median_ns());
    });
    let scalar_ns = median.get();
    simd::force_scalar(false);
    let mut value = h.clone();
    let mut m = Matrix::zeros(N, D);
    let mut v = Matrix::zeros(N, D);
    c.bench_function("fused_adam_pass_10000x64/simd", |b| {
        b.iter(|| {
            value.fused_adam_step(&mut m, &mut v, &h2, &step);
            std::hint::black_box(value.as_slice()[0])
        });
        median.set(b.median_ns());
    });
    results.push(SimdResult {
        name: "fused_adam_pass_10000x64",
        scalar_ns,
        simd_ns: median.get(),
    });
    threading::force_sequential(false);

    write_simd_json(&results, N, D);
}

/// Hand-rolled JSON (the workspace has no serde) written to the repo root.
fn write_simd_json(results: &[SimdResult], n: usize, d: usize) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"simd\",\n");
    out.push_str(&format!("  \"shape\": {{\"n\": {n}, \"d\": {d}}},\n"));
    out.push_str(&format!(
        "  \"isa\": \"{}\",\n",
        simd::detected_isa().name()
    ));
    out.push_str("  \"kernels\": [\n");
    for (i, r) in results.iter().enumerate() {
        let speedup = if r.simd_ns > 0.0 {
            r.scalar_ns / r.simd_ns
        } else {
            1.0
        };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"scalar_ns\": {:.0}, \"simd_ns\": {:.0}, \"speedup\": {:.3}}}{}\n",
            r.name,
            r.scalar_ns,
            r.simd_ns,
            speedup,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_simd.json");
    let mut f = std::fs::File::create(path).expect("create BENCH_simd.json");
    f.write_all(out.as_bytes()).expect("write BENCH_simd.json");
    println!("wrote {path} (isa={})", simd::detected_isa().name());
}

criterion_group!(
    benches,
    bench_matmul,
    bench_spmm,
    bench_neighbor_variance,
    bench_negative_sampling,
    bench_auc,
    bench_gat_layer,
    bench_adam_step,
    bench_vbm_epoch,
    bench_simd_ab
);
criterion_main!(benches);
