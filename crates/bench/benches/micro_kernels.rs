//! Criterion microbenchmarks for the hot kernels behind the experiments:
//! dense GEMM, sparse message passing, neighbour variance, negative-edge
//! sampling and AUC computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::rc::Rc;

use vgod_autograd::Tape;
use vgod_gnn::{neighbor_variance_matrix, neighbor_variance_scores};
use vgod_graph::{community_graph, seeded_rng, CommunityGraphConfig};
use vgod_tensor::Matrix;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[64usize, 256] {
        let a = Matrix::from_fn(n, n, |r, cc| ((r * 31 + cc * 17) % 13) as f32 - 6.0);
        let b = Matrix::from_fn(n, n, |r, cc| ((r * 7 + cc * 3) % 11) as f32 - 5.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let mut rng = seeded_rng(0);
    let g = community_graph(
        &CommunityGraphConfig::homogeneous(2000, 5, 8.0, 0.9),
        &mut rng,
    );
    let adj = g.mean_adjacency(false);
    let h = Matrix::from_fn(2000, 64, |r, cc| ((r + cc) % 7) as f32 * 0.3 - 1.0);
    c.bench_function("spmm_2000x64", |b| {
        b.iter(|| std::hint::black_box(adj.spmm(&h)));
    });
}

fn bench_neighbor_variance(c: &mut Criterion) {
    let mut rng = seeded_rng(1);
    let g = community_graph(
        &CommunityGraphConfig::homogeneous(2000, 5, 8.0, 0.9),
        &mut rng,
    );
    let adj = g.mean_adjacency(true);
    let h = Matrix::from_fn(2000, 64, |r, cc| ((r * 3 + cc) % 9) as f32 * 0.2 - 0.8);
    c.bench_function("neighbor_variance_matrix_2000x64", |b| {
        b.iter(|| std::hint::black_box(neighbor_variance_matrix(&h, &adj)));
    });
    let adj_rc = Rc::new(adj);
    c.bench_function("neighbor_variance_backward_2000x64", |b| {
        b.iter(|| {
            let tape = Tape::new();
            let hv = tape.constant(h.clone());
            let loss = neighbor_variance_scores(&hv, &adj_rc).mean_all();
            loss.backward();
        });
    });
}

fn bench_negative_sampling(c: &mut Criterion) {
    let mut rng = seeded_rng(2);
    let g = community_graph(
        &CommunityGraphConfig::homogeneous(2000, 5, 8.0, 0.9),
        &mut rng,
    );
    c.bench_function("negative_edges_2000", |b| {
        let mut rng = seeded_rng(3);
        b.iter(|| std::hint::black_box(g.negative_edges(&mut rng)));
    });
}

fn bench_auc(c: &mut Criterion) {
    let mut rng = seeded_rng(4);
    let scores: Vec<f32> = (0..20_000)
        .map(|_| rand::Rng::gen_range(&mut rng, 0.0..1.0))
        .collect();
    let labels: Vec<bool> = (0..20_000).map(|i| i % 17 == 0).collect();
    c.bench_function("auc_20000", |b| {
        b.iter(|| std::hint::black_box(vgod_eval::auc(&scores, &labels)));
    });
}

fn bench_gat_layer(c: &mut Criterion) {
    use vgod_autograd::ParamStore;
    use vgod_gnn::{GatLayer, GraphContext};
    let mut rng = seeded_rng(5);
    let g = {
        let mut g = community_graph(
            &CommunityGraphConfig::homogeneous(2000, 5, 8.0, 0.9),
            &mut rng,
        );
        g.set_attrs(Matrix::from_fn(2000, 64, |r, cc| {
            ((r + cc * 3) % 9) as f32 * 0.2 - 0.8
        }));
        g
    };
    let ctx = GraphContext::from_graph(&g);
    let mut store = ParamStore::new();
    let layer = GatLayer::new(&mut store, 64, 64, &mut rng);
    c.bench_function("gat_forward_2000x64", |b| {
        b.iter(|| {
            let tape = Tape::new();
            let x = tape.constant(g.attrs().clone());
            std::hint::black_box(layer.forward(&tape, &store, &x, &ctx).value())
        });
    });
    c.bench_function("gat_forward_backward_2000x64", |b| {
        b.iter(|| {
            let mut s = store.clone();
            let tape = Tape::new();
            let x = tape.constant(g.attrs().clone());
            let loss = layer.forward(&tape, &s, &x, &ctx).square().mean_all();
            loss.backward_into(&mut s);
        });
    });
}

fn bench_adam_step(c: &mut Criterion) {
    use vgod_autograd::ParamStore;
    use vgod_nn::{Adam, Optimizer};
    let mut store = ParamStore::new();
    for _ in 0..4 {
        store.insert(Matrix::from_fn(256, 256, |r, cc| {
            ((r * cc) % 7) as f32 * 0.1
        }));
    }
    // Seed gradients once; step() zeroes them, so re-seed per iteration.
    c.bench_function("adam_step_4x256x256", |b| {
        let mut opt = Adam::new(1e-3);
        b.iter(|| {
            for (_, p) in store.iter_mut() {
                p.grad.map_inplace(|_| 0.01);
            }
            opt.step(&mut store);
        });
    });
}

fn bench_vbm_epoch(c: &mut Criterion) {
    use vgod::{Vbm, VbmConfig};
    use vgod_eval::OutlierDetector;
    let mut rng = seeded_rng(6);
    let mut g = community_graph(
        &CommunityGraphConfig::homogeneous(2000, 5, 8.0, 0.9),
        &mut rng,
    );
    g.set_attrs(Matrix::from_fn(2000, 64, |r, cc| {
        ((r * 5 + cc) % 11) as f32 * 0.15 - 0.7
    }));
    c.bench_function("vbm_train_one_epoch_2000x64", |b| {
        b.iter(|| {
            let mut vbm = Vbm::new(VbmConfig {
                hidden_dim: 64,
                epochs: 1,
                lr: 0.005,
                self_loops: true,
                seed: 0,
            });
            OutlierDetector::fit(&mut vbm, &g);
        });
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_spmm,
    bench_neighbor_variance,
    bench_negative_sampling,
    bench_auc,
    bench_gat_layer,
    bench_adam_step,
    bench_vbm_epoch
);
criterion_main!(benches);
