//! Regenerates Table V and Fig. 6 (structural detection under varied clique sizes).
fn main() {
    vgod_bench::banner(
        "Varied clique-size experiment",
        "Table V & Fig. 6 of the VGOD paper",
    );
    vgod_bench::experiments::varied_q::run(
        vgod_bench::scale_from_env(),
        vgod_bench::seed_from_env(),
        vgod_bench::runs_from_env(),
    );
}
