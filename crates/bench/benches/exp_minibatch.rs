//! Mini-batch training ablation (the §V-D extensibility claim).
fn main() {
    vgod_bench::banner(
        "Mini-batch VBM ablation",
        "§V-D of the VGOD paper (engineering extension)",
    );
    vgod_bench::experiments::minibatch::run(
        vgod_bench::scale_from_env(),
        vgod_bench::seed_from_env(),
    );
}
