//! Micro-batched vs request-at-a-time serving A/B.
//!
//! The same fixture — a CoraLike replica plus two fitted checkpoints
//! (DOMINANT and DegNorm) — is served twice over HTTP:
//!
//! * **single** — `max_batch = 1`: every `POST /score` triggers its own
//!   full forward pass, the pre-batching world;
//! * **batched** — `max_batch = 32`, 2 ms flush window: concurrent
//!   requests for the same model share one forward pass per flush.
//!
//! A fixed client fleet hammers each server with small node-subset
//! requests and records per-request latency client-side; wall-clock over
//! the whole burst gives throughput. Results (throughput, p50/p99 latency,
//! batch counts) are written to `BENCH_serve.json` at the repository root.

use std::io::Write as _;
use std::time::{Duration, Instant};

use vgod_baselines::{DegNorm, Dominant};
use vgod_bench::{scale_from_env, seed_from_env};
use vgod_datasets::{replica, Dataset};
use vgod_eval::OutlierDetector;
use vgod_graph::{save_graph, seeded_rng};
use vgod_serve::{http, AnyDetector, ServeConfig};

const CLIENT_THREADS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 30;
const SUBSET: usize = 8;

struct RunResult {
    name: &'static str,
    wall_ms: f64,
    throughput_rps: f64,
    p50_us: u64,
    p99_us: u64,
    batches: u64,
    mean_batch: f64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn run(
    name: &'static str,
    models: &std::path::Path,
    graph_path: &std::path::Path,
    cfg: ServeConfig,
    num_nodes: usize,
) -> RunResult {
    let handle = vgod_serve::serve(models, graph_path, "127.0.0.1:0", cfg).unwrap();
    let addr = handle.addr();

    // Warm both models (first score builds the memoised graph context).
    for model in ["dom", "degnorm"] {
        let (status, body) = http::post(
            addr,
            "/score",
            &format!("{{\"model\":\"{model}\",\"nodes\":[0]}}"),
        )
        .unwrap();
        assert_eq!(status, 200, "{body}");
    }

    let t0 = Instant::now();
    let threads: Vec<_> = (0..CLIENT_THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(REQUESTS_PER_CLIENT);
                for i in 0..REQUESTS_PER_CLIENT {
                    // Mostly the deep model (where a shared forward pass
                    // pays), occasionally the cheap one.
                    let model = if i % 5 == 4 { "degnorm" } else { "dom" };
                    let ids: Vec<String> = (0..SUBSET)
                        .map(|k| ((t * 131 + i * 17 + k * 7) % num_nodes).to_string())
                        .collect();
                    let body = format!("{{\"model\":\"{model}\",\"nodes\":[{}]}}", ids.join(","));
                    let r0 = Instant::now();
                    let (status, reply) = http::post(addr, "/score", &body).unwrap();
                    latencies.push(r0.elapsed().as_micros() as u64);
                    assert_eq!(status, 200, "{reply}");
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::new();
    for t in threads {
        latencies.extend(t.join().unwrap());
    }
    let wall = t0.elapsed();

    let m = handle.metrics();
    handle.shutdown();
    handle.join();

    latencies.sort_unstable();
    let total = (CLIENT_THREADS * REQUESTS_PER_CLIENT) as f64;
    let result = RunResult {
        name,
        wall_ms: wall.as_secs_f64() * 1e3,
        throughput_rps: total / wall.as_secs_f64(),
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        batches: m.batches,
        mean_batch: m.requests as f64 / m.batches.max(1) as f64,
    };
    println!(
        "{name}: {:.0} req/s, p50 {} µs, p99 {} µs, {} batches (mean size {:.1})",
        result.throughput_rps, result.p50_us, result.p99_us, result.batches, result.mean_batch
    );
    result
}

fn main() {
    let mut rng = seeded_rng(seed_from_env());
    let data = replica(Dataset::CoraLike, scale_from_env(), &mut rng);
    let g = data.graph;
    let n = g.num_nodes();
    println!(
        "serving A/B on CoraLike replica: n={n}, d={}",
        g.num_attrs()
    );

    let dir = std::env::temp_dir().join(format!("vgod_bench_serving_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let models = dir.join("models");
    std::fs::create_dir_all(&models).unwrap();
    let graph_path = dir.join("graph.txt");
    save_graph(&g, graph_path.display().to_string()).unwrap();

    let mut dom = Dominant::new(vgod_bench::deep_config_for(scale_from_env(), 5));
    OutlierDetector::fit(&mut dom, &g);
    AnyDetector::Dominant(dom)
        .save_file(&models.join("dom.ckpt"))
        .unwrap();
    AnyDetector::DegNorm(DegNorm)
        .save_file(&models.join("degnorm.ckpt"))
        .unwrap();

    let single = ServeConfig {
        max_batch: 1,
        max_wait: Duration::from_micros(0),
        ..ServeConfig::default()
    };
    // The flush window must stay small relative to one forward pass,
    // otherwise waiting for co-batched requests costs more than it saves:
    // it only needs to cover the arrival jitter of concurrent clients.
    let batched = ServeConfig {
        max_batch: 32,
        max_wait: Duration::from_micros(250),
        ..ServeConfig::default()
    };
    let results = [
        run("single", &models, &graph_path, single, n),
        run("batched", &models, &graph_path, batched, n),
    ];
    let _ = std::fs::remove_dir_all(&dir);

    write_json(n, &results);
}

/// Hand-rolled JSON (the workspace has no serde) written to the repo root.
fn write_json(n: usize, results: &[RunResult]) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"serve\",\n");
    out.push_str(&format!(
        "  \"graph\": {{\"dataset\": \"cora_like\", \"scale\": \"{}\", \"n\": {n}}},\n",
        scale_from_env()
    ));
    out.push_str(&format!(
        "  \"clients\": {CLIENT_THREADS}, \"requests_per_client\": {REQUESTS_PER_CLIENT}, \
         \"subset_size\": {SUBSET},\n"
    ));
    out.push_str("  \"configs\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_ms\": {:.1}, \"throughput_rps\": {:.1}, \
             \"p50_us\": {}, \"p99_us\": {}, \"batches\": {}, \"mean_batch_size\": {:.2}}}{}\n",
            r.name,
            r.wall_ms,
            r.throughput_rps,
            r.p50_us,
            r.p99_us,
            r.batches,
            r.mean_batch,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    let speedup = results
        .last()
        .map(|b| b.throughput_rps / results[0].throughput_rps.max(1e-9))
        .unwrap_or(1.0);
    out.push_str("  ],\n");
    out.push_str(&format!("  \"batched_speedup\": {speedup:.3}\n"));
    out.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    let mut f = std::fs::File::create(path).expect("create BENCH_serve.json");
    f.write_all(out.as_bytes()).expect("write BENCH_serve.json");
    println!("wrote {path}");
}
