//! Serving throughput: concurrency sweep over the replicated engine and
//! the non-blocking HTTP front.
//!
//! Three phases against the same fixture (a CoraLike replica plus fitted
//! DOMINANT and DegNorm checkpoints):
//!
//! 1. **baseline** — the PR-4 measurement reproduced verbatim: one-shot
//!    connections (connect, one request, close), 4 client threads,
//!    micro-batching on. This is what `2839 req/s` referred to.
//! 2. **sweep** — keep-alive clients pipelining waves of requests over
//!    persistent connections, crossed over client count × replica count.
//!    Pipelining is what lets a client fleet keep the server saturated
//!    without paying one round-trip (and one connection) per request; the
//!    epoll front parses requests zero-copy out of each connection buffer
//!    and the replicas answer whole waves from shared batch passes.
//!    Per-level p50/p99 latency is recorded client-side (time from wave
//!    flush to each response).
//! 3. **overload** — a tiny per-replica queue is offered 10× its capacity
//!    of slow-model requests in one pipelined wave; the engine must shed
//!    the excess with `503` (backpressure, not buffering or collapse).
//!
//! Results land in `BENCH_serve.json` at the repository root, including
//! the speedup of the best sweep cell over the PR-4 reference number.

use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use vgod_baselines::{DegNorm, Dominant};
use vgod_bench::{scale_from_env, seed_from_env};
use vgod_datasets::{replica, Dataset};
use vgod_eval::OutlierDetector;
use vgod_graph::{save_graph, seeded_rng};
use vgod_serve::{http, AnyDetector, ServeConfig};

/// The PR-4 batched throughput this machine measured before the replicated
/// engine + epoll front landed; the sweep is judged against it.
const PR4_BATCHED_RPS: f64 = 2839.0;

const BASELINE_CLIENTS: usize = 4;
const BASELINE_REQUESTS: usize = 30;

const WAVE: usize = 64;
const WAVES: usize = 8;
const SWEEP_CLIENTS: [usize; 3] = [1, 2, 4];
const SWEEP_REPLICAS: [usize; 2] = [1, 2];
const SUBSET: usize = 8;

struct Cell {
    clients: usize,
    replicas: usize,
    requests: u64,
    throughput_rps: f64,
    p50_us: u64,
    p99_us: u64,
    batches: u64,
    mean_batch: f64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn score_body(model: &str, salt: usize, num_nodes: usize) -> String {
    let ids: Vec<String> = (0..SUBSET)
        .map(|k| ((salt * 17 + k * 7) % num_nodes).to_string())
        .collect();
    format!("{{\"model\":\"{model}\",\"nodes\":[{}]}}", ids.join(","))
}

/// Phase 1: the pre-replication measurement — one connection per request.
fn run_baseline(models: &std::path::Path, graph_path: &std::path::Path, num_nodes: usize) -> f64 {
    let cfg = ServeConfig {
        max_batch: 32,
        max_wait: Duration::from_micros(250),
        replicas: 1,
        ..ServeConfig::default()
    };
    let handle = vgod_serve::serve(models, graph_path, "127.0.0.1:0", cfg).unwrap();
    let addr = handle.addr();
    for model in ["dom", "degnorm"] {
        let (status, body) = http::post(addr, "/score", &score_body(model, 0, num_nodes)).unwrap();
        assert_eq!(status, 200, "{body}");
    }

    let t0 = Instant::now();
    let threads: Vec<_> = (0..BASELINE_CLIENTS)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..BASELINE_REQUESTS {
                    let model = if i % 5 == 4 { "degnorm" } else { "dom" };
                    let (status, reply) =
                        http::post(addr, "/score", &score_body(model, t * 131 + i, num_nodes))
                            .unwrap();
                    assert_eq!(status, 200, "{reply}");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let wall = t0.elapsed();
    handle.shutdown();
    handle.join();
    (BASELINE_CLIENTS * BASELINE_REQUESTS) as f64 / wall.as_secs_f64()
}

/// Phase 2, one cell: `clients` keep-alive connections, each pipelining
/// `WAVES` waves of `WAVE` requests, against a `replicas`-replica engine.
fn run_cell(
    models: &std::path::Path,
    graph_path: &std::path::Path,
    clients: usize,
    replicas: usize,
    num_nodes: usize,
) -> Cell {
    let cfg = ServeConfig {
        max_batch: 32,
        max_wait: Duration::from_micros(250),
        replicas,
        ..ServeConfig::default()
    };
    let handle = vgod_serve::serve(models, graph_path, "127.0.0.1:0", cfg).unwrap();
    let addr = handle.addr();
    // Warm: first score builds each replica's memoised graph context.
    for model in ["dom", "degnorm"] {
        let (status, body) = http::post(addr, "/score", &score_body(model, 0, num_nodes)).unwrap();
        assert_eq!(status, 200, "{body}");
    }

    let shed = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(clients));
    let t0 = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|t| {
            let barrier = Arc::clone(&barrier);
            let shed = Arc::clone(&shed);
            std::thread::spawn(move || {
                let mut client = http::Client::connect(addr).unwrap();
                let mut latencies = Vec::with_capacity(WAVE * WAVES);
                barrier.wait();
                for w in 0..WAVES {
                    let wave_start = Instant::now();
                    for k in 0..WAVE {
                        // Cheap model: the sweep measures the serving path
                        // (parse → route → batch → render), not the GNN.
                        client.send(
                            "POST",
                            "/score",
                            Some(&score_body("degnorm", t * 997 + w * 131 + k, num_nodes)),
                        );
                    }
                    client.flush().unwrap();
                    for _ in 0..WAVE {
                        let (status, reply) = client.recv().unwrap();
                        latencies.push(wave_start.elapsed().as_micros() as u64);
                        if status == 503 {
                            shed.fetch_add(1, Ordering::Relaxed);
                        } else {
                            assert_eq!(status, 200, "{reply}");
                        }
                    }
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::new();
    for t in threads {
        latencies.extend(t.join().unwrap());
    }
    let wall = t0.elapsed();

    let m = handle.metrics();
    handle.shutdown();
    handle.join();

    latencies.sort_unstable();
    let requests = (clients * WAVE * WAVES) as u64;
    let ok = requests - shed.load(Ordering::Relaxed);
    let cell = Cell {
        clients,
        replicas,
        requests: ok,
        throughput_rps: ok as f64 / wall.as_secs_f64(),
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        batches: m.batches,
        mean_batch: m.requests as f64 / m.batches.max(1) as f64,
    };
    println!(
        "clients={} replicas={}: {:.0} req/s, p50 {} µs, p99 {} µs, mean batch {:.1}",
        clients, replicas, cell.throughput_rps, cell.p50_us, cell.p99_us, cell.mean_batch
    );
    cell
}

/// Phase 3: offer a slow model 10× the per-replica queue capacity in one
/// pipelined wave; the excess must bounce with `503`.
fn run_overload(
    models: &std::path::Path,
    graph_path: &std::path::Path,
    num_nodes: usize,
) -> (u64, u64, u64) {
    let capacity = 8usize;
    let offered = capacity * 10;
    let cfg = ServeConfig {
        max_batch: 1,
        max_wait: Duration::from_micros(0),
        queue_capacity: capacity,
        replicas: 1,
        ..ServeConfig::default()
    };
    let handle = vgod_serve::serve(models, graph_path, "127.0.0.1:0", cfg).unwrap();
    let addr = handle.addr();
    let (status, body) = http::post(addr, "/score", &score_body("dom", 0, num_nodes)).unwrap();
    assert_eq!(status, 200, "{body}");

    let mut client = http::Client::connect(addr).unwrap();
    for k in 0..offered {
        client.send("POST", "/score", Some(&score_body("dom", k, num_nodes)));
    }
    client.flush().unwrap();
    let (mut accepted, mut rejected) = (0u64, 0u64);
    for _ in 0..offered {
        let (status, reply) = client.recv().unwrap();
        match status {
            200 => accepted += 1,
            503 => rejected += 1,
            other => panic!("unexpected status {other}: {reply}"),
        }
    }
    handle.shutdown();
    handle.join();
    assert!(
        rejected > 0,
        "a queue of {capacity} offered {offered} slow requests must shed load"
    );
    println!("overload: offered {offered}, accepted {accepted}, rejected {rejected} (503)");
    (offered as u64, accepted, rejected)
}

fn main() {
    let mut rng = seeded_rng(seed_from_env());
    let data = replica(Dataset::CoraLike, scale_from_env(), &mut rng);
    let g = data.graph;
    let n = g.num_nodes();
    println!(
        "serving sweep on CoraLike replica: n={n}, d={}",
        g.num_attrs()
    );

    let dir = std::env::temp_dir().join(format!("vgod_bench_serving_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let models = dir.join("models");
    std::fs::create_dir_all(&models).unwrap();
    let graph_path = dir.join("graph.txt");
    save_graph(&g, graph_path.display().to_string()).unwrap();

    let mut dom = Dominant::new(vgod_bench::deep_config_for(scale_from_env(), 5));
    OutlierDetector::fit(&mut dom, &g);
    AnyDetector::Dominant(dom)
        .save_file(&models.join("dom.ckpt"))
        .unwrap();
    AnyDetector::DegNorm(DegNorm)
        .save_file(&models.join("degnorm.ckpt"))
        .unwrap();

    let baseline_rps = run_baseline(&models, &graph_path, n);
    println!("baseline (one-shot connections): {baseline_rps:.0} req/s");

    let mut cells = Vec::new();
    for &replicas in &SWEEP_REPLICAS {
        for &clients in &SWEEP_CLIENTS {
            cells.push(run_cell(&models, &graph_path, clients, replicas, n));
        }
    }
    let overload = run_overload(&models, &graph_path, n);
    let _ = std::fs::remove_dir_all(&dir);

    write_json(n, baseline_rps, &cells, overload);
}

/// Hand-rolled JSON (the workspace has no serde) written to the repo root.
fn write_json(n: usize, baseline_rps: f64, cells: &[Cell], overload: (u64, u64, u64)) {
    let peak = cells
        .iter()
        .max_by(|a, b| a.throughput_rps.total_cmp(&b.throughput_rps))
        .unwrap();
    let (offered, accepted, rejected) = overload;

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"serve\",\n");
    out.push_str(&format!(
        "  \"graph\": {{\"dataset\": \"cora_like\", \"scale\": \"{}\", \"n\": {n}}},\n",
        scale_from_env()
    ));
    out.push_str(&format!(
        "  \"baseline\": {{\"name\": \"oneshot_batched_pr4\", \"clients\": {BASELINE_CLIENTS}, \
         \"throughput_rps\": {baseline_rps:.1}, \"reference_rps\": {PR4_BATCHED_RPS:.1}}},\n"
    ));
    out.push_str(&format!(
        "  \"wave\": {WAVE}, \"waves_per_client\": {WAVES}, \"subset_size\": {SUBSET},\n"
    ));
    out.push_str("  \"sweep\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"clients\": {}, \"replicas\": {}, \"requests\": {}, \
             \"throughput_rps\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \
             \"batches\": {}, \"mean_batch_size\": {:.2}}}{}\n",
            c.clients,
            c.replicas,
            c.requests,
            c.throughput_rps,
            c.p50_us,
            c.p99_us,
            c.batches,
            c.mean_batch,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"peak\": {{\"clients\": {}, \"replicas\": {}, \"throughput_rps\": {:.1}}},\n",
        peak.clients, peak.replicas, peak.throughput_rps
    ));
    out.push_str(&format!(
        "  \"speedup_vs_pr4_batched\": {:.3},\n",
        peak.throughput_rps / PR4_BATCHED_RPS
    ));
    out.push_str(&format!(
        "  \"overload\": {{\"queue_capacity\": 8, \"offered\": {offered}, \
         \"accepted\": {accepted}, \"rejected_503\": {rejected}}}\n"
    ));
    out.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    let mut f = std::fs::File::create(path).expect("create BENCH_serve.json");
    f.write_all(out.as_bytes()).expect("write BENCH_serve.json");
    println!("wrote {path}");
}
