//! Regenerates Fig. 3 (contextual-leakage sweep over k and distance metric).
fn main() {
    vgod_bench::banner(
        "Fig. 3 — contextual leakage vs k / distance",
        "Fig. 3 of the VGOD paper",
    );
    vgod_bench::experiments::fig3::run(
        vgod_bench::scale_from_env(),
        vgod_bench::seed_from_env(),
        vgod_bench::runs_from_env(),
    );
}
