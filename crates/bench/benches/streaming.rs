//! Streaming update latency: delta frontier rescoring vs a from-scratch
//! full rescore, plus the served end-to-end path.
//!
//! Two measurements on one ~100k-node graph:
//!
//! 1. **Library A/B** — per local detector, apply single-edge updates to
//!    the overlay and time (a) the delta path (`apply_mutation_rescore`:
//!    k-hop frontier, induced-closure rescore, cache patch) against
//!    (b) what a non-delta server would do (materialise the mutated graph
//!    and run a full `score`). Every update asserts the patched cache is
//!    **bit-identical** to the full rescore — the delta path is an
//!    execution strategy, never an approximation.
//! 2. **End-to-end** — start `serve_streaming` on the same graph and
//!    checkpoints, POST single-edge `/graph/update` batches over HTTP,
//!    and record client-observed wall latency (connect + parse + apply +
//!    delta rescore for every model + snapshot publish + reply).
//!
//! Results go to `BENCH_stream.json` at the repository root. CI's
//! stream-smoke job gates delta speedup ≥ 5x and end-to-end median
//! < 10 ms on these numbers.
//!
//! Environment knobs: `VGOD_STREAM_NODES` (default 100000) sizes the
//! graph, `VGOD_STREAM_UPDATES` (default 30) is the per-path update count.

use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

use rand::Rng;
use vgod::{Vbm, VbmConfig};
use vgod_baselines::{Deg, DegNorm};
use vgod_eval::{apply_mutation_rescore, DeltaCapability, OutlierDetector, ScoreCache};
use vgod_graph::{
    save_graph, seeded_rng, AttributedGraph, FrozenGraph, GraphMutation, GraphStore, OverlayGraph,
};
use vgod_serve::{http, AnyDetector, StreamConfig};
use vgod_tensor::Matrix;

fn random_graph(n: usize, avg_deg: usize, attrs: usize, seed: u64) -> AttributedGraph {
    let mut rng = seeded_rng(seed);
    let mut edges = Vec::with_capacity(n * avg_deg / 2);
    for _ in 0..n * avg_deg / 2 {
        let u: u32 = rng.gen_range(0..n as u32);
        let v: u32 = rng.gen_range(0..n as u32);
        if u != v {
            edges.push((u, v));
        }
    }
    let data: Vec<f32> = (0..n * attrs)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();
    let x = Matrix::from_vec(n, attrs, data).unwrap();
    AttributedGraph::from_edges(x, &edges)
}

fn median(sorted_us: &mut [u64]) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    sorted_us.sort_unstable();
    sorted_us[sorted_us.len() / 2]
}

struct DeltaRun {
    detector: &'static str,
    fit_ms: f64,
    initial_score_ms: f64,
    hops: usize,
    delta_us_median: u64,
    full_us_median: u64,
    speedup: f64,
    frontier_median: usize,
}

/// Single-edge update A/B for one detector: delta patch vs full rescore,
/// asserting bit-identity on every update.
fn delta_ab(
    detector: &'static str,
    det: &AnyDetector,
    fit_ms: f64,
    g: &AttributedGraph,
    updates: usize,
) -> DeltaRun {
    let DeltaCapability::Local { hops, merge } = det.delta_capability() else {
        panic!("{detector}: bench expects a local delta capability");
    };
    let t0 = Instant::now();
    let full = det.score(g);
    let initial_score_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut cache = ScoreCache::new(full, merge);

    let mut overlay = OverlayGraph::new(Arc::new(FrozenGraph::from_store(g)));
    let n = GraphStore::num_nodes(&overlay) as u32;
    let mut rng = seeded_rng(0xBEEF ^ detector.len() as u64);
    let mut delta_us = Vec::with_capacity(updates);
    let mut full_us = Vec::with_capacity(updates);
    let mut frontiers = Vec::with_capacity(updates);
    for _ in 0..updates {
        let u = rng.gen_range(0..n);
        let v = (u + rng.gen_range(1..n)) % n;
        let effect = overlay
            .apply_batch(&[GraphMutation::AddEdge { u, v }])
            .expect("apply update");
        if effect.applied == 0 {
            continue; // the random edge already existed
        }
        let t0 = Instant::now();
        let frontier = apply_mutation_rescore(det, &overlay, &effect.touched, &mut cache);
        delta_us.push(t0.elapsed().as_micros() as u64);
        frontiers.push(frontier);

        // The non-delta baseline: materialise the mutated graph and run a
        // full scoring pass, exactly like a FullRescore-capability model.
        let t0 = Instant::now();
        let reference = det.score(&overlay.materialize());
        full_us.push(t0.elapsed().as_micros() as u64);

        assert_eq!(
            cache
                .combined()
                .iter()
                .map(|s| s.to_bits())
                .collect::<Vec<_>>(),
            reference
                .combined
                .iter()
                .map(|s| s.to_bits())
                .collect::<Vec<_>>(),
            "{detector}: delta-patched cache must equal the full rescore"
        );
    }
    frontiers.sort_unstable();
    let delta_med = median(&mut delta_us);
    let full_med = median(&mut full_us);
    DeltaRun {
        detector,
        fit_ms,
        initial_score_ms,
        hops,
        delta_us_median: delta_med,
        full_us_median: full_med,
        speedup: full_med as f64 / (delta_med as f64).max(1.0),
        frontier_median: frontiers.get(frontiers.len() / 2).copied().unwrap_or(0),
    }
}

fn main() {
    let n: usize = std::env::var("VGOD_STREAM_NODES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let updates: usize = std::env::var("VGOD_STREAM_UPDATES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);

    let g = random_graph(n, 8, 16, 42);
    eprintln!(
        "graph: {} nodes, {} edges, {} attrs",
        g.num_nodes(),
        g.num_edges(),
        g.num_attrs()
    );

    // One streaming-exact baseline, one σ-recombining baseline, one
    // trained MLP — the three distinct cache-patch shapes the delta
    // layer implements.
    let t0 = Instant::now();
    let mut vbm = Vbm::new(VbmConfig {
        hidden_dim: 16,
        epochs: 2,
        ..VbmConfig::default()
    });
    OutlierDetector::fit(&mut vbm, &g);
    let vbm_fit_ms = t0.elapsed().as_secs_f64() * 1e3;
    let dets: Vec<(&'static str, AnyDetector, f64)> = vec![
        ("deg", AnyDetector::Deg(Deg), 0.0),
        ("degnorm", AnyDetector::DegNorm(DegNorm), 0.0),
        ("vbm", AnyDetector::Vbm(vbm), vbm_fit_ms),
    ];

    let mut runs = Vec::new();
    for (name, det, fit_ms) in &dets {
        let run = delta_ab(name, det, *fit_ms, &g, updates);
        eprintln!(
            "{name}: delta {} us vs full {} us median = {:.1}x (frontier median {}, {} hop(s))",
            run.delta_us_median, run.full_us_median, run.speedup, run.frontier_median, run.hops
        );
        runs.push(run);
    }

    // End-to-end: serve the same checkpoints in streaming mode and POST
    // single-edge updates over loopback HTTP.
    let dir = std::env::temp_dir().join(format!("vgod_bench_stream_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let models_dir = dir.join("models");
    std::fs::create_dir_all(&models_dir).expect("create models dir");
    for (name, det, _) in &dets {
        det.save_file(&models_dir.join(format!("{name}.ckpt")))
            .expect("save checkpoint");
    }
    let graph_path = dir.join("graph.txt");
    save_graph(&g, graph_path.to_str().unwrap()).expect("save graph");

    let handle = vgod_serve::serve_streaming(
        &models_dir,
        &graph_path,
        "127.0.0.1:0",
        StreamConfig::default(),
    )
    .expect("serve_streaming");
    let addr = handle.addr();
    let mut rng = seeded_rng(7);
    let mut e2e_us = Vec::with_capacity(updates);
    for _ in 0..updates {
        let u = rng.gen_range(0..n as u32);
        let v = (u + rng.gen_range(1..n as u32)) % n as u32;
        let body = format!("{{\"ops\":[{{\"op\":\"add_edge\",\"u\":{u},\"v\":{v}}}]}}");
        let t0 = Instant::now();
        let (status, reply) = http::post(addr, "/graph/update", &body).expect("post update");
        e2e_us.push(t0.elapsed().as_micros() as u64);
        assert_eq!(status, 200, "update failed: {reply}");
    }
    let _ = http::post(addr, "/shutdown", "");
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);

    let e2e_median = median(&mut e2e_us);
    let e2e_p99 = e2e_us[((e2e_us.len() as f64 - 1.0) * 0.99).round() as usize];
    let throughput = if e2e_median > 0 {
        1e6 / e2e_median as f64
    } else {
        0.0
    };
    eprintln!(
        "end-to-end single-edge update: median {e2e_median} us, p99 {e2e_p99} us \
         (~{throughput:.0} update/s at median)"
    );

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"streaming\",\n");
    out.push_str(&format!("  \"nodes\": {},\n", g.num_nodes()));
    out.push_str(&format!("  \"edges\": {},\n", g.num_edges()));
    out.push_str(&format!("  \"updates\": {updates},\n"));
    out.push_str("  \"detectors\": [\n");
    for (i, r) in runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"detector\": \"{}\", \"fit_ms\": {:.1}, \"initial_score_ms\": {:.1}, \
             \"hops\": {}, \"delta_us_median\": {}, \"full_us_median\": {}, \
             \"speedup\": {:.2}, \"frontier_median\": {}}}{}\n",
            r.detector,
            r.fit_ms,
            r.initial_score_ms,
            r.hops,
            r.delta_us_median,
            r.full_us_median,
            r.speedup,
            r.frontier_median,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"end_to_end\": {{\"updates\": {}, \"median_us\": {e2e_median}, \
         \"p99_us\": {e2e_p99}, \"updates_per_sec_at_median\": {throughput:.1}}}\n",
        e2e_us.len()
    ));
    out.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_stream.json");
    let mut f = std::fs::File::create(path).expect("create BENCH_stream.json");
    f.write_all(out.as_bytes()).expect("write BENCH_stream.json");
    println!("wrote {path}");
}
