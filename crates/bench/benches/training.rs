//! Recycled-vs-fresh training-loop A/B at the paper's epoch counts.
//!
//! Two representative training workloads — the VBM objective (10 epochs,
//! Fig. 8) and an ARM-style GCN autoencoder (100 epochs) — each run twice
//! on the same replica graph and seed:
//!
//! * **fresh** — the pre-runtime world: a brand-new [`Tape`] per epoch,
//!   arena disengaged, every value/gradient buffer heap-allocated anew;
//! * **recycled** — the shared-runtime world: one tape reset per epoch
//!   inside an arena scope, buffers recycled across epochs.
//!
//! The first two epochs of each variant are excluded from timing as warm-up;
//! the arena counters are reset after them, so the reported
//! `fresh_allocs_after_warmup` proves steady-state recycled epochs allocate
//! no new value/grad buffers. Two epochs (not one) because Adam lazily
//! allocates its moment buffers at the end of the first step, consuming the
//! first epoch's recycled gradient buffers from the free lists; the pool
//! only reaches its per-epoch steady state after the second step. Results
//! are written to `BENCH_training.json` at the repository root.

use std::io::Write as _;
use std::time::Instant;

use vgod_autograd::{ParamStore, Tape};
use vgod_bench::{scale_from_env, seed_from_env};
use vgod_datasets::{replica, Dataset};
use vgod_gnn::{neighbor_variance_scores, GcnLayer, GraphContext};
use vgod_graph::seeded_rng;
use vgod_nn::{Adam, Linear, Optimizer};
use vgod_tensor::arena;

const HIDDEN: usize = 64;

struct AbResult {
    name: &'static str,
    epochs: usize,
    fresh_ns_per_epoch: f64,
    recycled_ns_per_epoch: f64,
    fresh_allocs_after_warmup: u64,
    reused_after_warmup: u64,
}

/// Time `epochs` runs of one freshly-built epoch closure per variant.
/// `make` must return an identically-seeded model each call so both
/// variants perform the same arithmetic.
fn ab<F: FnMut(&Tape)>(name: &'static str, epochs: usize, mut make: impl FnMut() -> F) -> AbResult {
    const WARMUP: usize = 2;
    assert!(epochs > WARMUP, "need at least one post-warm-up epoch");

    // Fresh: new tape every epoch, arena disengaged (pass-through).
    let mut epoch = make();
    for _ in 0..WARMUP {
        let tape = Tape::new();
        epoch(&tape); // warm-up, untimed
    }
    let t0 = Instant::now();
    for _ in WARMUP..epochs {
        let tape = Tape::new();
        epoch(&tape);
    }
    let fresh_ns_per_epoch = t0.elapsed().as_nanos() as f64 / (epochs - WARMUP) as f64;

    // Recycled: one tape, reset per epoch, arena engaged. Two warm-up
    // epochs: the first populates the free lists but its released gradient
    // buffers are consumed by Adam's lazy moment-buffer initialisation, so
    // the buffer pool only reaches steady state after the second step.
    let mut epoch = make();
    let mut recycled_ns_per_epoch = 0.0;
    let mut stats = arena::ArenaStats::default();
    arena::scope(|| {
        let tape = Tape::new();
        for _ in 0..WARMUP {
            tape.reset();
            epoch(&tape);
        }
        arena::reset_stats();
        let t0 = Instant::now();
        for _ in WARMUP..epochs {
            tape.reset();
            epoch(&tape);
        }
        recycled_ns_per_epoch = t0.elapsed().as_nanos() as f64 / (epochs - WARMUP) as f64;
        stats = arena::stats();
    });

    println!(
        "{name}: fresh {:.2} ms/epoch, recycled {:.2} ms/epoch ({:.2}x), \
         post-warm-up allocs fresh={} reused={}",
        fresh_ns_per_epoch / 1e6,
        recycled_ns_per_epoch / 1e6,
        fresh_ns_per_epoch / recycled_ns_per_epoch.max(1.0),
        stats.fresh,
        stats.reused,
    );
    AbResult {
        name,
        epochs,
        fresh_ns_per_epoch,
        recycled_ns_per_epoch,
        fresh_allocs_after_warmup: stats.fresh,
        reused_after_warmup: stats.reused,
    }
}

fn main() {
    let mut rng = seeded_rng(seed_from_env());
    let data = replica(Dataset::CoraLike, scale_from_env(), &mut rng);
    let g = data.graph;
    let n = g.num_nodes();
    let d = g.num_attrs();
    println!("training A/B on CoraLike replica: n={n}, d={d}");

    // One shared context serves both variants of both workloads (the same
    // memoised instance every `fit` in this process would see).
    let ctx = GraphContext::of(&g);
    let mean = ctx.mean().clone();
    let x = g.attrs().clone();

    let mut results = Vec::new();

    // VBM objective at the paper's 10 epochs: linear embed, row-normalise,
    // neighbourhood variance loss.
    results.push(ab("vbm_variance_10", 10, || {
        let mut mrng = seeded_rng(7);
        let mut store = ParamStore::new();
        let linear = Linear::new(&mut store, d, HIDDEN, true, &mut mrng);
        let mut opt = Adam::new(0.01);
        let (x, mean) = (x.clone(), mean.clone());
        move |tape: &Tape| {
            let xv = tape.constant(x.clone());
            let h = linear.forward(tape, &store, &xv).l2_normalize_rows();
            let loss = neighbor_variance_scores(&h, &mean).mean_all();
            loss.backward_into(&mut store);
            opt.step(&mut store);
        }
    }));

    // ARM-style GCN autoencoder at the paper's 100 epochs.
    results.push(ab("arm_gcn_autoencoder_100", 100, || {
        let mut mrng = seeded_rng(3);
        let mut store = ParamStore::new();
        let enc = GcnLayer::new(&mut store, d, HIDDEN, &mut mrng);
        let mid = GcnLayer::new(&mut store, HIDDEN, HIDDEN, &mut mrng);
        let dec = GcnLayer::new(&mut store, HIDDEN, d, &mut mrng);
        let mut opt = Adam::new(0.005);
        let (x, ctx) = (x.clone(), ctx.clone());
        move |tape: &Tape| {
            let xv = tape.constant(x.clone());
            let z = enc.forward(tape, &store, &xv, &ctx).relu();
            let z = mid.forward(tape, &store, &z, &ctx).relu();
            let xhat = dec.forward(tape, &store, &z, &ctx);
            let loss = xhat.sub(&xv).square().mean_all();
            loss.backward_into(&mut store);
            opt.step(&mut store);
        }
    }));

    write_json(n, d, &results);
}

/// Hand-rolled JSON (the workspace has no serde) written to the repo root.
fn write_json(n: usize, d: usize, results: &[AbResult]) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"training\",\n");
    out.push_str(&format!(
        "  \"graph\": {{\"dataset\": \"cora_like\", \"scale\": \"{}\", \"n\": {n}, \"d\": {d}}},\n",
        scale_from_env()
    ));
    out.push_str("  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        let speedup = if r.recycled_ns_per_epoch > 0.0 {
            r.fresh_ns_per_epoch / r.recycled_ns_per_epoch
        } else {
            1.0
        };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"epochs\": {}, \"fresh_ns_per_epoch\": {:.0}, \
             \"recycled_ns_per_epoch\": {:.0}, \"speedup\": {:.3}, \
             \"fresh_allocs_after_warmup\": {}, \"reused_after_warmup\": {}}}{}\n",
            r.name,
            r.epochs,
            r.fresh_ns_per_epoch,
            r.recycled_ns_per_epoch,
            speedup,
            r.fresh_allocs_after_warmup,
            r.reused_after_warmup,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_training.json");
    let mut f = std::fs::File::create(path).expect("create BENCH_training.json");
    f.write_all(out.as_bytes())
        .expect("write BENCH_training.json");
    println!("wrote {path}");
}
