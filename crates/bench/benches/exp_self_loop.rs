//! Regenerates Tables XI & XII — the self-loop-edge ablation.
fn main() {
    vgod_bench::banner(
        "Self-loop edge ablation",
        "Tables XI & XII of the VGOD paper",
    );
    vgod_bench::experiments::self_loop::run(
        vgod_bench::scale_from_env(),
        vgod_bench::seed_from_env(),
        vgod_bench::runs_from_env(),
    );
}
