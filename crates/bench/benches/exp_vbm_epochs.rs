//! Regenerates Fig. 8 (VBM AUC trend over training epochs per clique size).
fn main() {
    vgod_bench::banner("VBM epoch trend", "Fig. 8 of the VGOD paper");
    vgod_bench::experiments::vbm_epochs::run(
        vgod_bench::scale_from_env(),
        vgod_bench::seed_from_env(),
    );
}
