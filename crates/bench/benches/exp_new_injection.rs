//! Regenerates Table VI (the degree-preserving injection approach).
fn main() {
    vgod_bench::banner("New injection approach", "Table VI of the VGOD paper");
    vgod_bench::experiments::new_injection::run(
        vgod_bench::scale_from_env(),
        vgod_bench::seed_from_env(),
        vgod_bench::runs_from_env(),
    );
}
