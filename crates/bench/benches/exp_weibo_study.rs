//! Regenerates Table X and the Fig. 9 diagnostics — the labeled-outlier study.
fn main() {
    vgod_bench::banner(
        "Weibo labeled-outlier study",
        "Table X & Fig. 9 of the VGOD paper",
    );
    vgod_bench::experiments::weibo_study::run(
        vgod_bench::scale_from_env(),
        vgod_bench::seed_from_env(),
    );
}
