//! Extended metrics (AUC + average precision + precision@k), BOND-style.
fn main() {
    vgod_bench::banner(
        "Extended metrics",
        "BOND-style AP report (engineering extension)",
    );
    vgod_bench::experiments::metrics_extra::run(
        vgod_bench::scale_from_env(),
        vgod_bench::seed_from_env(),
    );
}
