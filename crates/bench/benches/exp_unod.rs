//! Regenerates Table IV (AUC) and Table III (AucGap) — the main UNOD experiment.
fn main() {
    vgod_bench::banner("UNOD experiment", "Tables III & IV of the VGOD paper");
    vgod_bench::experiments::unod::run(
        vgod_bench::scale_from_env(),
        vgod_bench::seed_from_env(),
        vgod_bench::runs_from_env(),
    );
}
