//! Empirically verifies Theorem 1 (the norm-bias of max-distance candidate
//! selection) on the replica attribute populations.
fn main() {
    vgod_bench::banner("Theorem 1 verification", "§IV-B2 of the VGOD paper");
    vgod_bench::experiments::theorem1::run(
        vgod_bench::scale_from_env(),
        vgod_bench::seed_from_env(),
    );
}
