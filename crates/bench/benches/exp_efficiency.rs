//! Regenerates Fig. 7 (train s/epoch) and Table VII (inference seconds).
fn main() {
    vgod_bench::banner("Efficiency", "Fig. 7 & Table VII of the VGOD paper");
    vgod_bench::experiments::efficiency::run(
        vgod_bench::scale_from_env(),
        vgod_bench::seed_from_env(),
    );
}
