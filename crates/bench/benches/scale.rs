//! Out-of-core scale trajectory: 10k → 100k → 1M nodes under one fixed
//! memory budget.
//!
//! Each point synthesises an on-disk store (`SynthStoreConfig::scaled`:
//! average degree 20, 32 attributes — the 1M point is the ISSUE's
//! 1M-node / 10M-edge graph), opens it demand-paged under the budget, and
//! runs one detector per class through the `GraphStore` path:
//!
//! * **streaming_exact** — `Deg`: one adjacency sweep, no sampling;
//! * **sampled_mlp** — `Vbm`: mini-batch variance training over sampled
//!   batch views, per-batch scoring;
//! * **sampled_gnn** — `Dominant`: GCN autoencoder trained on one sampled
//!   training subgraph, scored per sampled batch.
//!
//! Per class the bench records wall-clock for fit and score, the process
//! peak RSS (`VmHWM`, reset via `/proc/self/clear_refs` before each run),
//! and the store's read/eviction counters. `in_memory_bytes_estimate`
//! accompanies every point so the JSON itself proves where the budget is
//! genuinely out of reach in-core (at 1M nodes the attribute matrix alone
//! is 128 MB against the default 96 MB budget). Results are written to
//! `BENCH_scale.json` at the repository root.
//!
//! Environment knobs: `VGOD_SCALE_MAX_NODES` caps the trajectory (e.g.
//! `100000` for the CI smoke run), `VGOD_SCALE_BUDGET` overrides the
//! budget (`parse_mem_budget` syntax, default `96M`).

use std::io::Write as _;
use std::time::Instant;

use vgod::{Vbm, VbmConfig};
use vgod_baselines::{DeepConfig, Deg, Dominant};
use vgod_eval::OutlierDetector;
use vgod_graph::{
    in_memory_bytes_estimate, parse_mem_budget, synth_store, GraphStore, OocStore, SamplingConfig,
    SynthStoreConfig, DEFAULT_ATTR_BLOCK_NODES, DEFAULT_EDGE_BLOCK_ENTRIES,
};

struct ClassResult {
    class: &'static str,
    detector: &'static str,
    fit_ms: f64,
    score_ms: f64,
    peak_rss_bytes: u64,
    bytes_read: u64,
    evictions: u64,
}

struct PointResult {
    n: usize,
    edges: usize,
    attrs: usize,
    synth_ms: f64,
    store_file_bytes: u64,
    in_memory_estimate: u64,
    classes: Vec<ClassResult>,
}

/// Current peak resident set (`VmHWM`) in bytes, 0 if unreadable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Reset the kernel's peak-RSS watermark so each class run reports its own
/// high-water mark (Linux ≥ 4.0; a failure just means the peak is an
/// over-estimate carried from earlier work).
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

fn run_class(
    class: &'static str,
    detector: &'static str,
    store: &OocStore,
    cfg: &SamplingConfig,
    det: &mut dyn OutlierDetector,
) -> ClassResult {
    let before = store.stats();
    reset_peak_rss();
    let t0 = Instant::now();
    det.fit_store(store, cfg);
    let fit_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let scores = det.score_store(store, cfg);
    let score_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(scores.combined.len(), store.num_nodes());
    assert!(scores.combined.iter().all(|s| s.is_finite()));
    let after = store.stats();
    ClassResult {
        class,
        detector,
        fit_ms,
        score_ms,
        peak_rss_bytes: peak_rss_bytes(),
        bytes_read: after.bytes_read - before.bytes_read,
        evictions: after.evictions - before.evictions,
    }
}

fn run_point(n: usize, budget: usize) -> PointResult {
    let path = std::env::temp_dir().join(format!("vgod_scale_{n}_{}", std::process::id()));
    let synth_cfg = SynthStoreConfig::scaled(n, 42);
    let t0 = Instant::now();
    synth_store(
        &path,
        &synth_cfg,
        DEFAULT_ATTR_BLOCK_NODES,
        DEFAULT_EDGE_BLOCK_ENTRIES,
    )
    .expect("synthesise store");
    let synth_ms = t0.elapsed().as_secs_f64() * 1e3;
    let store_file_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);

    let store = OocStore::open(&path, budget).expect("open store");
    let edges = store.num_edges();
    let attrs = store.num_attrs();
    // Default threshold: the 10k point exercises the bit-identical
    // full-graph fast path, 100k and 1M the sampled path.
    let cfg = SamplingConfig {
        batch_size: 4096,
        fanout: 4,
        hops: 2,
        train_seeds: 1024,
        seed: 42,
        ..SamplingConfig::default()
    };

    let mut classes = Vec::new();
    classes.push(run_class("streaming_exact", "deg", &store, &cfg, &mut Deg));
    let mut vbm = Vbm::new(VbmConfig {
        hidden_dim: 16,
        epochs: 2,
        ..VbmConfig::default()
    });
    classes.push(run_class("sampled_mlp", "vbm", &store, &cfg, &mut vbm));
    let mut dominant = Dominant::new(DeepConfig {
        hidden: 8,
        epochs: 2,
        ..DeepConfig::fast()
    });
    classes.push(run_class(
        "sampled_gnn",
        "dominant",
        &store,
        &cfg,
        &mut dominant,
    ));

    let _ = std::fs::remove_file(&path);
    PointResult {
        n,
        edges,
        attrs,
        synth_ms,
        store_file_bytes,
        in_memory_estimate: in_memory_bytes_estimate(n, edges, attrs),
        classes,
    }
}

fn main() {
    let budget =
        parse_mem_budget(&std::env::var("VGOD_SCALE_BUDGET").unwrap_or_else(|_| "96M".to_string()))
            .expect("VGOD_SCALE_BUDGET");
    let max_nodes: usize = std::env::var("VGOD_SCALE_MAX_NODES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);

    let mut points = Vec::new();
    for n in [10_000usize, 100_000, 1_000_000] {
        if n > max_nodes {
            break;
        }
        eprintln!("scale: n = {n} under {budget}-byte budget …");
        let p = run_point(n, budget);
        for c in &p.classes {
            eprintln!(
                "  {:>16} fit {:>10.1} ms  score {:>10.1} ms  peak RSS {:>7.1} MB  \
                 read {:>8.1} MB  evictions {}",
                c.class,
                c.fit_ms,
                c.score_ms,
                c.peak_rss_bytes as f64 / (1024.0 * 1024.0),
                c.bytes_read as f64 / (1024.0 * 1024.0),
                c.evictions,
            );
        }
        points.push(p);
    }
    write_json(budget, &points);
}

/// Hand-rolled JSON (the workspace has no serde) written to the repo root.
fn write_json(budget: usize, points: &[PointResult]) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"scale\",\n");
    out.push_str(&format!("  \"budget_bytes\": {budget},\n"));
    out.push_str("  \"trajectory\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"n\": {}, \"edges\": {}, \"attrs\": {}, \"synth_ms\": {:.0}, \
             \"store_file_bytes\": {}, \"in_memory_bytes_estimate\": {}, \
             \"exceeds_budget_in_memory\": {},\n",
            p.n,
            p.edges,
            p.attrs,
            p.synth_ms,
            p.store_file_bytes,
            p.in_memory_estimate,
            p.in_memory_estimate > budget as u64,
        ));
        out.push_str("     \"classes\": [\n");
        for (j, c) in p.classes.iter().enumerate() {
            out.push_str(&format!(
                "       {{\"class\": \"{}\", \"detector\": \"{}\", \"fit_ms\": {:.1}, \
                 \"score_ms\": {:.1}, \"peak_rss_bytes\": {}, \"bytes_read\": {}, \
                 \"evictions\": {}}}{}\n",
                c.class,
                c.detector,
                c.fit_ms,
                c.score_ms,
                c.peak_rss_bytes,
                c.bytes_read,
                c.evictions,
                if j + 1 < p.classes.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "     ]}}{}\n",
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    let mut f = std::fs::File::create(path).expect("create BENCH_scale.json");
    f.write_all(out.as_bytes()).expect("write BENCH_scale.json");
    println!("wrote {path}");
}
