//! Out-of-core scale trajectory: 10k → 100k → 1M nodes under one fixed
//! memory budget.
//!
//! Each point synthesises an on-disk store (`SynthStoreConfig::scaled`:
//! average degree 20, 32 attributes — the 1M point is the ISSUE's
//! 1M-node / 10M-edge graph), opens it demand-paged under the budget, and
//! runs one detector per class through the `GraphStore` path:
//!
//! * **streaming_exact** — `Deg`: one adjacency sweep, no sampling;
//! * **sampled_mlp** — `Vbm`: mini-batch variance training over sampled
//!   batch views, per-batch scoring;
//! * **sampled_gnn** — `Dominant`: GCN autoencoder trained on one sampled
//!   training subgraph, scored per sampled batch.
//!
//! Per class the bench records wall-clock for fit and score, the process
//! peak RSS (`VmHWM`, reset via `/proc/self/clear_refs` before each run),
//! and the store's read/eviction counters. `in_memory_bytes_estimate`
//! accompanies every point so the JSON itself proves where the budget is
//! genuinely out of reach in-core (at 1M nodes the attribute matrix alone
//! is 128 MB against the default 96 MB budget). Results are written to
//! `BENCH_scale.json` at the repository root.
//!
//! Environment knobs: `VGOD_SCALE_MAX_NODES` caps the trajectory (e.g.
//! `100000` for the CI smoke run), `VGOD_SCALE_BUDGET` overrides the
//! budget (`parse_mem_budget` syntax, default `96M`).

use std::io::Write as _;
use std::path::Path;
use std::time::Instant;

use vgod::{Vbm, VbmConfig};
use vgod_baselines::{DeepConfig, Deg, Dominant};
use vgod_eval::OutlierDetector;
use vgod_graph::{
    in_memory_bytes_estimate, parse_mem_budget, synth_store, CachePolicy, GraphStore, OocStore,
    SamplingConfig, StoreOptions, SynthStoreConfig, DEFAULT_ATTR_BLOCK_NODES,
    DEFAULT_EDGE_BLOCK_ENTRIES,
};

struct ClassResult {
    class: &'static str,
    detector: &'static str,
    fit_ms: f64,
    score_ms: f64,
    peak_rss_bytes: u64,
    bytes_read: u64,
    evictions: u64,
}

/// One execution mode of the concurrent scoring A/B (same fitted model,
/// same budget, fresh cold block cache; scores asserted bit-identical).
/// A mode whose machinery self-disables on this host (prefetch with no
/// spare hardware thread) is recorded as `skipped` instead of being timed:
/// a timing row for a stage that never ran would only measure noise.
struct AbResult {
    mode: &'static str,
    threads: usize,
    score_ms: f64,
    bytes_read: u64,
    hits: u64,
    misses: u64,
    skipped: Option<&'static str>,
}

/// Cache-replacement comparison under a hot-set-plus-scan workload.
/// `hot_survival` is the block-level fraction of the hot working set
/// still served from cache when re-touched after the scan
/// (`1 − re-read bytes / hot-set bytes`).
struct ScanCacheResult {
    policy: &'static str,
    hot_survival: f64,
    hot_bytes: u64,
    hot_reread_bytes: u64,
    hits: u64,
    misses: u64,
}

struct PointResult {
    n: usize,
    edges: usize,
    attrs: usize,
    synth_ms: f64,
    store_file_bytes: u64,
    in_memory_estimate: u64,
    classes: Vec<ClassResult>,
    ab: Vec<AbResult>,
    scan_cache: Vec<ScanCacheResult>,
}

/// Current peak resident set (`VmHWM`) in bytes, 0 if unreadable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Reset the kernel's peak-RSS watermark so each class run reports its own
/// high-water mark (Linux ≥ 4.0; a failure just means the peak is an
/// over-estimate carried from earlier work).
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

fn run_class(
    class: &'static str,
    detector: &'static str,
    store: &OocStore,
    cfg: &SamplingConfig,
    det: &mut dyn OutlierDetector,
) -> ClassResult {
    let before = store.stats();
    reset_peak_rss();
    let t0 = Instant::now();
    det.fit_store(store, cfg);
    let fit_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let scores = det.score_store(store, cfg);
    let score_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(scores.combined.len(), store.num_nodes());
    assert!(scores.combined.iter().all(|s| s.is_finite()));
    let after = store.stats();
    ClassResult {
        class,
        detector,
        fit_ms,
        score_ms,
        peak_rss_bytes: peak_rss_bytes(),
        bytes_read: after.bytes_read - before.bytes_read,
        evictions: after.evictions - before.evictions,
    }
}

/// Sequential vs batch-parallel vs parallel+prefetch scoring of one fitted
/// sampled-path detector. Each mode reopens the store so every run starts
/// from a cold block cache under the same budget; the OS page cache is
/// warm for all three (the fit pass touched the whole file), so the A/B
/// isolates the pipeline, not the disk.
fn run_ab(path: &Path, budget: usize, cfg: &SamplingConfig) -> Vec<AbResult> {
    let store = OocStore::open(path, budget).expect("open store for A/B fit");
    let mut vbm = Vbm::new(VbmConfig {
        hidden_dim: 16,
        epochs: 2,
        ..VbmConfig::default()
    });
    vbm.fit_store(&store, cfg);
    drop(store);

    let modes: [(&'static str, usize, bool); 3] = [
        ("sequential", 1, false),
        ("parallel", 0, false),
        ("parallel_prefetch", 0, true),
    ];
    let hw_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut baseline: Option<Vec<f32>> = None;
    let mut out = Vec::new();
    for (mode, threads, prefetch) in modes {
        // The scoring pipeline self-disables the prefetcher when there is
        // no spare hardware thread to absorb its pread time; honor that
        // here instead of publishing a timing row for a stage that never
        // ran (it would differ from plain parallel only by noise).
        if prefetch && hw_threads <= 1 {
            out.push(AbResult {
                mode,
                threads: hw_threads,
                score_ms: 0.0,
                bytes_read: 0,
                hits: 0,
                misses: 0,
                skipped: Some("prefetch self-disables on a single-hardware-thread host"),
            });
            continue;
        }
        let store = OocStore::open(path, budget).expect("open store for A/B mode");
        let run_cfg = SamplingConfig {
            ooc_threads: threads,
            prefetch,
            ..*cfg
        };
        let t0 = Instant::now();
        let scores = vbm.score_store(&store, &run_cfg).combined;
        let score_ms = t0.elapsed().as_secs_f64() * 1e3;
        match &baseline {
            None => baseline = Some(scores),
            Some(b) => assert_eq!(
                b, &scores,
                "{mode} must be bit-identical to the sequential baseline"
            ),
        }
        let st = store.stats();
        out.push(AbResult {
            mode,
            threads: run_cfg.score_threads(),
            score_ms,
            bytes_read: st.bytes_read,
            hits: st.hits,
            misses: st.misses,
            skipped: None,
        });
    }
    out
}

/// LRU vs segmented LRU under the adversarial workload the segmented
/// policy exists for: a small re-used hot set interleaved with one full
/// per-row sweep. Reported per policy: the hit rate and bytes re-read
/// when the hot set is touched again *after* the sweep (segmented keeps
/// it resident; plain LRU has evicted it for scan blocks it never reuses).
fn run_scan_cache(path: &Path, n: usize, attrs: usize) -> Vec<ScanCacheResult> {
    fn touch_hot(store: &OocStore, hot: u32, row: &mut [f32], nbrs: &mut Vec<u32>) {
        for u in 0..hot {
            store.attr_row_into(u, row);
            store.neighbors_into(u, nbrs);
        }
    }
    let mut out = Vec::new();
    for (name, policy) in [
        ("lru", CachePolicy::Lru),
        ("segmented", CachePolicy::Segmented),
    ] {
        // Budget: row pointers (u64 each) + 12 cache blocks. The hot set
        // (4 attr blocks plus their ~3 edge blocks) fits the protected
        // segment's 4/5-of-cache cap with room to spare; the scan does not.
        let attr_block_bytes = DEFAULT_ATTR_BLOCK_NODES * attrs * 4;
        let budget = (n + 1) * 8 + 12 * attr_block_bytes;
        let store = OocStore::open_with(
            path,
            StoreOptions {
                budget,
                policy,
                shards: 1, // single shard: eviction order is fully determined
            },
        )
        .expect("open store for scan A/B");
        let hot = DEFAULT_ATTR_BLOCK_NODES as u32 * 4;
        let mut row = vec![0.0f32; store.num_attrs()];
        let mut nbrs = Vec::new();
        let base = store.stats();
        touch_hot(&store, hot, &mut row, &mut nbrs); // admit
        let hot_bytes = store.stats().bytes_read - base.bytes_read;
        touch_hot(&store, hot, &mut row, &mut nbrs); // reuse: promote under segmented
        for u in 0..n as u32 {
            store.attr_row_into(u, &mut row); // the scan
        }
        let before = store.stats();
        touch_hot(&store, hot, &mut row, &mut nbrs); // hot set still resident?
        let after = store.stats();
        let reread = after.bytes_read - before.bytes_read;
        out.push(ScanCacheResult {
            policy: name,
            hot_survival: 1.0 - reread as f64 / hot_bytes.max(1) as f64,
            hot_bytes,
            hot_reread_bytes: reread,
            hits: after.hits,
            misses: after.misses,
        });
    }
    out
}

fn run_point(n: usize, budget: usize) -> PointResult {
    let path = std::env::temp_dir().join(format!("vgod_scale_{n}_{}", std::process::id()));
    let synth_cfg = SynthStoreConfig::scaled(n, 42);
    let t0 = Instant::now();
    synth_store(
        &path,
        &synth_cfg,
        DEFAULT_ATTR_BLOCK_NODES,
        DEFAULT_EDGE_BLOCK_ENTRIES,
    )
    .expect("synthesise store");
    let synth_ms = t0.elapsed().as_secs_f64() * 1e3;
    let store_file_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);

    let store = OocStore::open(&path, budget).expect("open store");
    let edges = store.num_edges();
    let attrs = store.num_attrs();
    // Default threshold: the 10k point exercises the bit-identical
    // full-graph fast path, 100k and 1M the sampled path.
    let cfg = SamplingConfig {
        batch_size: 4096,
        fanout: 4,
        hops: 2,
        train_seeds: 1024,
        seed: 42,
        ..SamplingConfig::default()
    };

    let mut classes = Vec::new();
    classes.push(run_class("streaming_exact", "deg", &store, &cfg, &mut Deg));
    let mut vbm = Vbm::new(VbmConfig {
        hidden_dim: 16,
        epochs: 2,
        ..VbmConfig::default()
    });
    classes.push(run_class("sampled_mlp", "vbm", &store, &cfg, &mut vbm));
    let mut dominant = Dominant::new(DeepConfig {
        hidden: 8,
        epochs: 2,
        ..DeepConfig::fast()
    });
    classes.push(run_class(
        "sampled_gnn",
        "dominant",
        &store,
        &cfg,
        &mut dominant,
    ));
    drop(store);

    // The concurrency A/B and the replacement-policy comparison only make
    // sense above the sampling threshold (below it scoring is one exact
    // full-graph pass with nothing to parallelise or thrash).
    let (ab, scan_cache) = if n > cfg.full_graph_threshold {
        (run_ab(&path, budget, &cfg), run_scan_cache(&path, n, attrs))
    } else {
        (Vec::new(), Vec::new())
    };

    let _ = std::fs::remove_file(&path);
    PointResult {
        n,
        edges,
        attrs,
        synth_ms,
        store_file_bytes,
        in_memory_estimate: in_memory_bytes_estimate(n, edges, attrs),
        classes,
        ab,
        scan_cache,
    }
}

fn main() {
    let budget =
        parse_mem_budget(&std::env::var("VGOD_SCALE_BUDGET").unwrap_or_else(|_| "96M".to_string()))
            .expect("VGOD_SCALE_BUDGET");
    let max_nodes: usize = std::env::var("VGOD_SCALE_MAX_NODES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);

    let mut points = Vec::new();
    for n in [10_000usize, 100_000, 1_000_000] {
        if n > max_nodes {
            break;
        }
        eprintln!("scale: n = {n} under {budget}-byte budget …");
        let p = run_point(n, budget);
        for c in &p.classes {
            eprintln!(
                "  {:>16} fit {:>10.1} ms  score {:>10.1} ms  peak RSS {:>7.1} MB  \
                 read {:>8.1} MB  evictions {}",
                c.class,
                c.fit_ms,
                c.score_ms,
                c.peak_rss_bytes as f64 / (1024.0 * 1024.0),
                c.bytes_read as f64 / (1024.0 * 1024.0),
                c.evictions,
            );
        }
        for ab in &p.ab {
            if let Some(reason) = ab.skipped {
                eprintln!("  ab {:>18} skipped: {reason}", ab.mode);
                continue;
            }
            eprintln!(
                "  ab {:>18} ({} thread(s)) score {:>10.1} ms  read {:>8.1} MB  \
                 {} hits / {} misses",
                ab.mode,
                ab.threads,
                ab.score_ms,
                ab.bytes_read as f64 / (1024.0 * 1024.0),
                ab.hits,
                ab.misses,
            );
        }
        for sc in &p.scan_cache {
            eprintln!(
                "  scan {:>16} hot survival {:>5.1}%  hot re-read {:>8.1} MB",
                sc.policy,
                sc.hot_survival * 100.0,
                sc.hot_reread_bytes as f64 / (1024.0 * 1024.0),
            );
        }
        points.push(p);
    }
    write_json(budget, &points);
}

/// Hand-rolled JSON (the workspace has no serde) written to the repo root.
fn write_json(budget: usize, points: &[PointResult]) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"scale\",\n");
    out.push_str(&format!("  \"budget_bytes\": {budget},\n"));
    out.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    out.push_str("  \"trajectory\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"n\": {}, \"edges\": {}, \"attrs\": {}, \"synth_ms\": {:.0}, \
             \"store_file_bytes\": {}, \"in_memory_bytes_estimate\": {}, \
             \"exceeds_budget_in_memory\": {},\n",
            p.n,
            p.edges,
            p.attrs,
            p.synth_ms,
            p.store_file_bytes,
            p.in_memory_estimate,
            p.in_memory_estimate > budget as u64,
        ));
        out.push_str("     \"classes\": [\n");
        for (j, c) in p.classes.iter().enumerate() {
            out.push_str(&format!(
                "       {{\"class\": \"{}\", \"detector\": \"{}\", \"fit_ms\": {:.1}, \
                 \"score_ms\": {:.1}, \"peak_rss_bytes\": {}, \"bytes_read\": {}, \
                 \"evictions\": {}}}{}\n",
                c.class,
                c.detector,
                c.fit_ms,
                c.score_ms,
                c.peak_rss_bytes,
                c.bytes_read,
                c.evictions,
                if j + 1 < p.classes.len() { "," } else { "" }
            ));
        }
        out.push_str("     ],\n");
        out.push_str("     \"ab\": [\n");
        for (j, a) in p.ab.iter().enumerate() {
            let comma = if j + 1 < p.ab.len() { "," } else { "" };
            if let Some(reason) = a.skipped {
                out.push_str(&format!(
                    "       {{\"mode\": \"{}\", \"threads\": {}, \"skipped\": \"{reason}\"}}{comma}\n",
                    a.mode, a.threads,
                ));
                continue;
            }
            out.push_str(&format!(
                "       {{\"mode\": \"{}\", \"threads\": {}, \"score_ms\": {:.1}, \
                 \"bytes_read\": {}, \"hits\": {}, \"misses\": {}}}{comma}\n",
                a.mode, a.threads, a.score_ms, a.bytes_read, a.hits, a.misses,
            ));
        }
        out.push_str("     ],\n");
        out.push_str("     \"scan_cache\": [\n");
        for (j, s) in p.scan_cache.iter().enumerate() {
            out.push_str(&format!(
                "       {{\"policy\": \"{}\", \"hot_survival\": {:.4}, \"hot_bytes\": {}, \
                 \"hot_reread_bytes\": {}, \"hits\": {}, \"misses\": {}}}{}\n",
                s.policy,
                s.hot_survival,
                s.hot_bytes,
                s.hot_reread_bytes,
                s.hits,
                s.misses,
                if j + 1 < p.scan_cache.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "     ]}}{}\n",
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    let mut f = std::fs::File::create(path).expect("create BENCH_scale.json");
    f.write_all(out.as_bytes()).expect("write BENCH_scale.json");
    println!("wrote {path}");
}
