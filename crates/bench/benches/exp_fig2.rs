//! Regenerates Fig. 2 (the data-leakage demonstration).
fn main() {
    vgod_bench::banner(
        "Fig. 2 — injection data leakage",
        "Fig. 2 of the VGOD paper",
    );
    vgod_bench::experiments::fig2::run(
        vgod_bench::scale_from_env(),
        vgod_bench::seed_from_env(),
        vgod_bench::runs_from_env(),
    );
}
