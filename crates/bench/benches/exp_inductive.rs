//! Regenerates Tables XV & XVI — the inductive-setting experiment (Appendix B).
fn main() {
    vgod_bench::banner("Inductive setting", "Tables XV & XVI of the VGOD paper");
    vgod_bench::experiments::inductive::run(
        vgod_bench::scale_from_env(),
        vgod_bench::seed_from_env(),
        vgod_bench::runs_from_env(),
    );
}
