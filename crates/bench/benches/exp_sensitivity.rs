//! Hyperparameter sensitivity sweep (engineering extension).
fn main() {
    vgod_bench::banner(
        "VBM hyperparameter sensitivity",
        "backs §VI-B2's fixed hyperparameters",
    );
    vgod_bench::experiments::sensitivity::run(
        vgod_bench::scale_from_env(),
        vgod_bench::seed_from_env(),
    );
}
