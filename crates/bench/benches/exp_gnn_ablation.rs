//! Regenerates Table VIII (AUC) and Table IX (AucGap) — ARM backbone ablation.
fn main() {
    vgod_bench::banner(
        "GNN backbone ablation",
        "Tables VIII & IX of the VGOD paper",
    );
    vgod_bench::experiments::gnn_ablation::run(
        vgod_bench::scale_from_env(),
        vgod_bench::seed_from_env(),
        vgod_bench::runs_from_env(),
    );
}
