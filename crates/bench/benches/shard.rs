//! Shard-count scaling of partitioned range scoring: 1 → 2 → 4 shards of
//! one synthetic store, one detector per class.
//!
//! Each point partitions the store with `partition_store` (the same
//! contiguous-range + halo-closure layout `vgod serve --shards` builds),
//! opens every shard's `ShardStore` slice, scores each owned range with
//! `score_store_range` on its own thread (the library-level equivalent of
//! one worker process per shard — the process boundary adds only loopback
//! HTTP, which the serving bench covers), and reassembles the ranges with
//! `merge_range_scores`. Per detector and shard count the bench records
//! partition time, wall-clock scoring time, and the partition's halo
//! totals, and asserts the merged scores are **bit-identical** to the
//! single-process `score_store` pass — the distributed layer is an
//! execution strategy, never an approximation.
//!
//! Results go to `BENCH_shard.json` at the repository root. `host_cpus` is
//! recorded so the CI scaling gate (shard-smoke job) can skip the ≥ 1.6x
//! multi-shard speedup check on hosts without enough cores to show it.
//!
//! Environment knobs: `VGOD_SHARD_NODES` (default 100000) sizes the store,
//! `VGOD_SHARD_BUDGET` (default `64M`) is the per-slice cache budget.

use std::io::Write as _;
use std::path::Path;
use std::time::Instant;

use vgod::{Vbm, VbmConfig};
use vgod_baselines::{DeepConfig, Deg, Dominant};
use vgod_eval::{merge_range_scores, OutlierDetector, RangeScores};
use vgod_graph::{
    parse_mem_budget, partition_store, synth_store, PartitionConfig, SamplingConfig, ShardStore,
    StoreOptions, SynthStoreConfig, DEFAULT_ATTR_BLOCK_NODES, DEFAULT_EDGE_BLOCK_ENTRIES,
};
use vgod_graph::{GraphStore, OocStore};

struct ShardRun {
    shards: usize,
    partition_ms: f64,
    score_ms: f64,
    ghosts: u64,
    cross_edges: u64,
    halo_bytes: u64,
}

struct DetectorCurve {
    class: &'static str,
    detector: &'static str,
    fit_ms: f64,
    runs: Vec<ShardRun>,
}

fn curve<D: OutlierDetector + Sync>(
    class: &'static str,
    detector: &'static str,
    path: &Path,
    budget: usize,
    cfg: &SamplingConfig,
    det: &mut D,
) -> DetectorCurve {
    let store = OocStore::open(path, budget).expect("open store");
    let n = store.num_nodes();
    let t0 = Instant::now();
    det.fit_store(&store, cfg);
    let fit_ms = t0.elapsed().as_secs_f64() * 1e3;
    let reference = det.score_store(&store, cfg).combined;
    drop(store);

    // Scoring is a pure `&self` pass on fitted parameters from here on.
    let det: &D = det;
    let mut runs = Vec::new();
    for shards in [1usize, 2, 4] {
        let dir = std::env::temp_dir().join(format!(
            "vgod_bench_shard_{}_{shards}_{detector}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = OocStore::open(path, budget).expect("open store for partition");
        let t0 = Instant::now();
        let manifest = partition_store(&store, &dir, &PartitionConfig::new(shards, *cfg))
            .expect("partition store");
        let partition_ms = t0.elapsed().as_secs_f64() * 1e3;
        drop(store);

        let slices: Vec<ShardStore> = (0..shards)
            .map(|i| ShardStore::open(&dir, i, StoreOptions::new(budget)).expect("open slice"))
            .collect();
        let t0 = Instant::now();
        let parts: Vec<RangeScores> = std::thread::scope(|scope| {
            let handles: Vec<_> = slices
                .iter()
                .zip(&manifest.shards)
                .map(|(slice, meta)| {
                    scope.spawn(move || {
                        vgod_tensor::arena::scope(|| {
                            det.score_store_range(slice, cfg, meta.lo, meta.hi)
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let merged = merge_range_scores(n, parts);
        let score_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            reference.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            merged
                .combined
                .iter()
                .map(|s| s.to_bits())
                .collect::<Vec<_>>(),
            "{detector} at {shards} shard(s): merged scores must be bit-identical"
        );
        runs.push(ShardRun {
            shards,
            partition_ms,
            score_ms,
            ghosts: manifest.total_ghosts(),
            cross_edges: manifest.total_cross_edges(),
            halo_bytes: manifest.total_halo_bytes(),
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    DetectorCurve {
        class,
        detector,
        fit_ms,
        runs,
    }
}

fn main() {
    let n: usize = std::env::var("VGOD_SHARD_NODES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let budget =
        parse_mem_budget(&std::env::var("VGOD_SHARD_BUDGET").unwrap_or_else(|_| "64M".to_string()))
            .expect("VGOD_SHARD_BUDGET");
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());

    let path = std::env::temp_dir().join(format!("vgod_shard_bench_{}", std::process::id()));
    let synth_cfg = SynthStoreConfig::scaled(n, 42);
    synth_store(
        &path,
        &synth_cfg,
        DEFAULT_ATTR_BLOCK_NODES,
        DEFAULT_EDGE_BLOCK_ENTRIES,
    )
    .expect("synthesise store");

    // Sampled path (threshold below n) with one score thread per slice:
    // shard-count scaling must come from the shard threads, not from the
    // intra-shard batch pool the single-process A/B already measures.
    let cfg = SamplingConfig {
        full_graph_threshold: 20_000.min(n.saturating_sub(1)).max(1),
        batch_size: 4096,
        fanout: 4,
        hops: 2,
        train_seeds: 1024,
        seed: 42,
        ooc_threads: 1,
        ..SamplingConfig::default()
    };

    let mut curves = Vec::new();
    curves.push(curve(
        "streaming_exact",
        "deg",
        &path,
        budget,
        &cfg,
        &mut Deg,
    ));
    let mut vbm = Vbm::new(VbmConfig {
        hidden_dim: 16,
        epochs: 2,
        ..VbmConfig::default()
    });
    curves.push(curve("sampled_mlp", "vbm", &path, budget, &cfg, &mut vbm));
    let mut dominant = Dominant::new(DeepConfig {
        hidden: 8,
        epochs: 2,
        ..DeepConfig::fast()
    });
    curves.push(curve(
        "sampled_gnn",
        "dominant",
        &path,
        budget,
        &cfg,
        &mut dominant,
    ));
    let _ = std::fs::remove_file(&path);

    for c in &curves {
        eprintln!("{} ({}): fit {:.1} ms", c.class, c.detector, c.fit_ms);
        let single = c.runs[0].score_ms;
        for r in &c.runs {
            eprintln!(
                "  {} shard(s): partition {:>8.1} ms  score {:>8.1} ms  \
                 speedup {:>4.2}x  halo {} bytes",
                r.shards,
                r.partition_ms,
                r.score_ms,
                single / r.score_ms.max(1e-9),
                r.halo_bytes,
            );
        }
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"shard\",\n");
    out.push_str(&format!("  \"nodes\": {n},\n"));
    out.push_str(&format!("  \"budget_bytes\": {budget},\n"));
    out.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    out.push_str("  \"detectors\": [\n");
    for (i, c) in curves.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"class\": \"{}\", \"detector\": \"{}\", \"fit_ms\": {:.1}, \"runs\": [\n",
            c.class, c.detector, c.fit_ms
        ));
        for (j, r) in c.runs.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"shards\": {}, \"partition_ms\": {:.1}, \"score_ms\": {:.1}, \
                 \"speedup\": {:.3}, \"ghosts\": {}, \"cross_edges\": {}, \
                 \"halo_bytes\": {}}}{}\n",
                r.shards,
                r.partition_ms,
                r.score_ms,
                c.runs[0].score_ms / r.score_ms.max(1e-9),
                r.ghosts,
                r.cross_edges,
                r.halo_bytes,
                if j + 1 < c.runs.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 < curves.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json");
    let mut f = std::fs::File::create(path).expect("create BENCH_shard.json");
    f.write_all(out.as_bytes()).expect("write BENCH_shard.json");
    println!("wrote {path}");
}
