//! Sequential-vs-pooled kernel benchmarks at paper scale (SBM n ≈ 10k,
//! d = 64 — the size of the paper's mid-sized datasets).
//!
//! Each kernel is timed twice: once with `threading::force_sequential(true)`
//! (the plain single-thread path) and once on the worker pool with the
//! session's resolved thread count. Results print criterion-style and are
//! also written to `BENCH_kernels.json` at the repository root, together
//! with the thread/core counts — speedups are only meaningful when the
//! machine actually has cores to spare.

use std::cell::Cell;
use std::io::Write as _;

use criterion::{criterion_group, criterion_main, Criterion};
use vgod_graph::{community_graph, seeded_rng, CommunityGraphConfig};
use vgod_tensor::{threading, AdamStep, Matrix};

const N: usize = 10_000;
const D: usize = 64;

struct KernelResult {
    name: &'static str,
    seq_ns: f64,
    par_ns: f64,
}

/// Time `routine` on both paths via the criterion shim's calibrated loop.
///
/// With a single resolved thread, `threads_for` never dispatches to the
/// pool, so both legs execute the bit-identical sequential code path —
/// timing the "pool" leg separately would only publish timer noise as a
/// fake speedup or regression. The bench then records `pool_ns = seq_ns`
/// (a 1.000x by construction) and says so in the JSON.
fn ab<O>(c: &mut Criterion, name: &'static str, mut routine: impl FnMut() -> O) -> KernelResult {
    let median = Cell::new(0.0f64);
    threading::force_sequential(true);
    c.bench_function(&format!("{name}/seq"), |b| {
        b.iter(&mut routine);
        median.set(b.median_ns());
    });
    let seq_ns = median.get();
    threading::force_sequential(false);
    let par_ns = if threading::num_threads() <= 1 {
        seq_ns
    } else {
        c.bench_function(&format!("{name}/pool"), |b| {
            b.iter(&mut routine);
            median.set(b.median_ns());
        });
        median.get()
    };
    KernelResult {
        name,
        seq_ns,
        par_ns,
    }
}

fn bench_kernels(c: &mut Criterion) {
    let mut rng = seeded_rng(0);
    let g = community_graph(
        &CommunityGraphConfig::homogeneous(N, 10, 8.0, 0.9),
        &mut rng,
    );
    let adj = g.mean_adjacency(true);
    let h = Matrix::from_fn(N, D, |r, cc| ((r * 5 + cc * 3) % 13) as f32 * 0.15 - 0.9);
    let w = Matrix::from_fn(D, D, |r, cc| ((r * 7 + cc) % 11) as f32 * 0.1 - 0.5);
    let h2 = Matrix::from_fn(N, D, |r, cc| ((r + cc * 7) % 9) as f32 * 0.2 - 0.8);

    let mut results = Vec::new();
    results.push(ab(c, "matmul_10000x64x64", || {
        std::hint::black_box(h.matmul(&w))
    }));
    results.push(ab(c, "matmul_tn_10000x64", || {
        std::hint::black_box(h.matmul_tn(&h2))
    }));
    results.push(ab(c, "spmm_10000x64", || {
        std::hint::black_box(adj.spmm(&h))
    }));
    results.push(ab(c, "spmm_t_10000x64", || {
        std::hint::black_box(adj.spmm_t(&h))
    }));
    results.push(ab(c, "map_tanh_10000x64", || {
        std::hint::black_box(h.map(|v| v.tanh()))
    }));
    results.push(ab(c, "hadamard_10000x64", || {
        std::hint::black_box(h.zip_map(&h2, |a, b| a * b))
    }));
    results.push(ab(c, "row_sums_10000x64", || {
        std::hint::black_box(h.row_sums())
    }));
    results.push(ab(c, "col_sums_10000x64", || {
        std::hint::black_box(h.col_sums())
    }));
    results.push(ab(c, "frobenius_10000x64", || {
        std::hint::black_box(h.frobenius_norm())
    }));
    let step = AdamStep {
        lr: 0.01,
        beta1: 0.9,
        beta2: 0.999,
        eps: 1e-8,
        bias1: 0.1,
        bias2: 0.001,
    };
    // Buffers hoisted out of the routine so the A/B times the fused pass,
    // not a clone and two zero-fills; the update keeps every buffer finite.
    let mut value = h.clone();
    let mut m = Matrix::zeros(N, D);
    let mut v = Matrix::zeros(N, D);
    results.push(ab(c, "fused_adam_pass_10000x64", || {
        value.fused_adam_step(&mut m, &mut v, &h2, &step);
        std::hint::black_box(value.as_slice()[0])
    }));

    write_json(&results);
}

/// Hand-rolled JSON (the workspace has no serde) written to the repo root.
fn write_json(results: &[KernelResult]) {
    let threads = threading::num_threads();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"kernels\",\n");
    out.push_str(&format!("  \"shape\": {{\"n\": {N}, \"d\": {D}}},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"cores\": {cores},\n"));
    if threads <= 1 {
        out.push_str(
            "  \"note\": \"single thread resolved: pool dispatch is skipped by \
             construction, so the pool leg is the sequential code path\",\n",
        );
    }
    out.push_str("  \"kernels\": [\n");
    for (i, r) in results.iter().enumerate() {
        let speedup = if r.par_ns > 0.0 {
            r.seq_ns / r.par_ns
        } else {
            1.0
        };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"seq_ns\": {:.0}, \"pool_ns\": {:.0}, \"speedup\": {:.3}}}{}\n",
            r.name,
            r.seq_ns,
            r.par_ns,
            speedup,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    let mut f = std::fs::File::create(path).expect("create BENCH_kernels.json");
    f.write_all(out.as_bytes())
        .expect("write BENCH_kernels.json");
    println!("wrote {path} (threads={threads}, cores={cores})");
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
