//! Regenerates Tables XIII & XIV — the score-combination ablation (Appendix A).
fn main() {
    vgod_bench::banner(
        "Score combination ablation",
        "Tables XIII & XIV of the VGOD paper",
    );
    vgod_bench::experiments::score_combination::run(
        vgod_bench::scale_from_env(),
        vgod_bench::seed_from_env(),
        vgod_bench::runs_from_env(),
    );
}
